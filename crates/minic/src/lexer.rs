//! Lexer for mini-C.

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Identifier.
    Ident(String),
    /// Keyword `fn`.
    Fn,
    /// Keyword `var`.
    Var,
    /// Keyword `global`.
    Global,
    /// Keyword `if`.
    If,
    /// Keyword `else`.
    Else,
    /// Keyword `while`.
    While,
    /// Keyword `for`.
    For,
    /// Keyword `return`.
    Return,
    /// Keyword `break`.
    Break,
    /// Keyword `continue`.
    Continue,
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `{`.
    LBrace,
    /// `}`.
    RBrace,
    /// `[`.
    LBracket,
    /// `]`.
    RBracket,
    /// `;`.
    Semi,
    /// `,`.
    Comma,
    /// `=`.
    Assign,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `&`.
    Amp,
    /// `|`.
    Pipe,
    /// `^`.
    Caret,
    /// `~`.
    Tilde,
    /// `!`.
    Bang,
    /// `<<`.
    Shl,
    /// `>>`.
    Shr,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `==`.
    EqEq,
    /// `!=`.
    NotEq,
    /// `&&`.
    AndAnd,
    /// `||`.
    OrOr,
}

/// A lexical error with line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Lexes mini-C source into tokens. `//` comments run to end of line.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let err = |line: usize, msg: String| LexError { line, message: msg };
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'0'..=b'9' => {
                let start = i;
                // Hex literal support.
                if c == b'0' && bytes.get(i + 1) == Some(&b'x') {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
                        i += 1;
                    }
                    let text = &src[start + 2..i];
                    let v = i64::from_str_radix(text, 16)
                        .map_err(|e| err(line, format!("bad hex literal: {e}")))?;
                    out.push(Token::Int(v));
                } else {
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v: i64 = text
                        .parse()
                        .map_err(|e| err(line, format!("bad literal: {e}")))?;
                    out.push(Token::Int(v));
                }
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                out.push(match word {
                    "fn" => Token::Fn,
                    "var" => Token::Var,
                    "global" => Token::Global,
                    "if" => Token::If,
                    "else" => Token::Else,
                    "while" => Token::While,
                    "for" => Token::For,
                    "return" => Token::Return,
                    "break" => Token::Break,
                    "continue" => Token::Continue,
                    _ => Token::Ident(word.to_owned()),
                });
            }
            _ => {
                let two = bytes.get(i..i + 2).unwrap_or(&[]);
                let (tok, adv) = match two {
                    b"<<" => (Token::Shl, 2),
                    b">>" => (Token::Shr, 2),
                    b"<=" => (Token::Le, 2),
                    b">=" => (Token::Ge, 2),
                    b"==" => (Token::EqEq, 2),
                    b"!=" => (Token::NotEq, 2),
                    b"&&" => (Token::AndAnd, 2),
                    b"||" => (Token::OrOr, 2),
                    _ => match c {
                        b'(' => (Token::LParen, 1),
                        b')' => (Token::RParen, 1),
                        b'{' => (Token::LBrace, 1),
                        b'}' => (Token::RBrace, 1),
                        b'[' => (Token::LBracket, 1),
                        b']' => (Token::RBracket, 1),
                        b';' => (Token::Semi, 1),
                        b',' => (Token::Comma, 1),
                        b'=' => (Token::Assign, 1),
                        b'+' => (Token::Plus, 1),
                        b'-' => (Token::Minus, 1),
                        b'*' => (Token::Star, 1),
                        b'/' => (Token::Slash, 1),
                        b'%' => (Token::Percent, 1),
                        b'&' => (Token::Amp, 1),
                        b'|' => (Token::Pipe, 1),
                        b'^' => (Token::Caret, 1),
                        b'~' => (Token::Tilde, 1),
                        b'!' => (Token::Bang, 1),
                        b'<' => (Token::Lt, 1),
                        b'>' => (Token::Gt, 1),
                        other => {
                            return Err(err(line, format!("unexpected byte {:?}", other as char)))
                        }
                    },
                };
                out.push(tok);
                i += adv;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_program() {
        let toks = lex("fn main() { var x = 0x10 + 2; } // comment").unwrap();
        assert_eq!(toks[0], Token::Fn);
        assert_eq!(toks[1], Token::Ident("main".into()));
        assert!(toks.contains(&Token::Int(16)));
        assert!(toks.contains(&Token::Int(2)));
    }

    #[test]
    fn two_char_operators() {
        let toks = lex("a <= b >> 2 && c != d").unwrap();
        assert!(toks.contains(&Token::Le));
        assert!(toks.contains(&Token::Shr));
        assert!(toks.contains(&Token::AndAnd));
        assert!(toks.contains(&Token::NotEq));
    }

    #[test]
    fn rejects_garbage() {
        assert!(lex("fn main() { @ }").is_err());
    }

    #[test]
    fn tracks_lines() {
        let e = lex("fn ok()\n{\n  @\n}").unwrap_err();
        assert_eq!(e.line, 3);
    }
}
