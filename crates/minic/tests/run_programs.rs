//! Compile-and-run tests: mini-C semantics verified end to end on the
//! emulator, plus interaction with the stripped-binary path.

use redfat_emu::{Emu, ErrorMode, HostRuntime, RunResult};
use redfat_minic::compile;

fn run(src: &str, input: Vec<i64>) -> (i64, Vec<i64>, Vec<u8>) {
    let image = compile(src).expect("compiles");
    let rt = HostRuntime::new(ErrorMode::Abort).with_input(input);
    let mut emu = Emu::load_image(&image, rt).expect("loads");
    match emu.run(50_000_000) {
        RunResult::Exited(code) => (
            code,
            emu.runtime.io.out_ints.clone(),
            emu.runtime.io.out_bytes.clone(),
        ),
        other => panic!("program did not exit cleanly: {other:?}"),
    }
}

fn run_ints(src: &str, input: Vec<i64>) -> Vec<i64> {
    run(src, input).1
}

#[test]
fn arithmetic_and_precedence() {
    let out = run_ints(
        "fn main() { print(1 + 2 * 3); print((1 + 2) * 3); print(10 - 3 - 4); print(7 / 2); print(7 % 3); return 0; }",
        vec![],
    );
    assert_eq!(out, vec![7, 9, 3, 3, 1]);
}

#[test]
fn negative_division_truncates_toward_zero() {
    let out = run_ints(
        "fn main() { print(0 - 7 / 2); print((0 - 7) / 2); print((0-7) % 3); return 0; }",
        vec![],
    );
    assert_eq!(out, vec![-3, -3, -1]);
}

#[test]
fn bitwise_and_shifts() {
    let out = run_ints(
        "fn main() { print(12 & 10); print(12 | 3); print(12 ^ 10); print(1 << 10); print(1024 >> 3); print(~0); return 0; }",
        vec![],
    );
    assert_eq!(out, vec![8, 15, 6, 1024, 128, -1]);
}

#[test]
fn comparisons_and_logic() {
    let out = run_ints(
        "fn main() {
            print(3 < 5); print(5 < 3); print(3 <= 3); print(4 > 5);
            print(2 == 2); print(2 != 2); print(1 && 2); print(0 || 5);
            print(!0); print(!7);
            print(0-1 < 1); // signed comparison
            return 0;
        }",
        vec![],
    );
    assert_eq!(out, vec![1, 0, 1, 0, 1, 0, 1, 1, 1, 0, 1]);
}

#[test]
fn short_circuit_skips_side_effects() {
    let out = run_ints(
        "global hits;
         fn bump() { hits = hits + 1; return 1; }
         fn main() {
            var x = 0 && bump();
            var y = 1 || bump();
            print(hits); print(x); print(y);
            return 0;
         }",
        vec![],
    );
    assert_eq!(out, vec![0, 0, 1]);
}

#[test]
fn loops_and_control_flow() {
    let out = run_ints(
        "fn main() {
            var sum = 0;
            for (var i = 0; i < 10; i = i + 1) {
                if (i == 3) { continue; }
                if (i == 8) { break; }
                sum = sum + i;
            }
            print(sum); // 0+1+2+4+5+6+7 = 25
            var n = 5;
            var fact = 1;
            while (n > 0) { fact = fact * n; n = n - 1; }
            print(fact);
            return 0;
        }",
        vec![],
    );
    assert_eq!(out, vec![25, 120]);
}

#[test]
fn functions_recursion_and_args() {
    let out = run_ints(
        "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); }
         fn six(a, b, c, d, e, f) { return a + 2*b + 3*c + 4*d + 5*e + 6*f; }
         fn main() { print(fib(15)); print(six(1, 1, 1, 1, 1, 1)); return 0; }",
        vec![],
    );
    assert_eq!(out, vec![610, 21]);
}

#[test]
fn heap_arrays() {
    let out = run_ints(
        "fn main() {
            var a = malloc(10 * 8);
            for (var i = 0; i < 10; i = i + 1) { a[i] = i * i; }
            var sum = 0;
            for (var i = 0; i < 10; i = i + 1) { sum = sum + a[i]; }
            print(sum);
            print(a[9]);
            free(a);
            return 0;
        }",
        vec![],
    );
    assert_eq!(out, vec![285, 81]);
}

#[test]
fn constant_index_runs() {
    // Exercises the batching peephole: consecutive p[k] = leaf stores.
    let out = run_ints(
        "fn main() {
            var p = malloc(4 * 8);
            var v = 42;
            p[0] = 1;
            p[1] = v;
            p[2] = 3;
            p[3] = v;
            print(p[0] + p[1] + p[2] + p[3]);
            return 0;
        }",
        vec![],
    );
    assert_eq!(out, vec![88]);
}

#[test]
fn globals_and_global_arrays() {
    let out = run_ints(
        "global counter;
         global table[8];
         fn main() {
            counter = 5;
            var t = &table;
            for (var i = 0; i < 8; i = i + 1) { t[i] = i + counter; }
            print(t[0]); print(t[7]); print(counter);
            return 0;
         }",
        vec![],
    );
    assert_eq!(out, vec![5, 12, 5]);
}

#[test]
fn byte_access_intrinsics() {
    let (_, ints, bytes) = run(
        "fn main() {
            var buf = malloc(16);
            store8(buf, 0, 72);
            store8(buf, 1, 105);
            store8(buf, 2, 300); // truncates to 44
            print(load8(buf, 0));
            print(load8(buf, 2));
            putc(load8(buf, 0));
            putc(load8(buf, 1));
            return 0;
        }",
        vec![],
    );
    assert_eq!(ints, vec![72, 44]);
    assert_eq!(bytes, b"Hi".to_vec());
}

#[test]
fn input_stream_and_eof() {
    let out = run_ints(
        "fn main() {
            var v = input();
            var sum = 0;
            while (v != 0-1) { sum = sum + v; v = input(); }
            print(sum);
            return 0;
        }",
        vec![10, 20, 30],
    );
    assert_eq!(out, vec![60]);
}

#[test]
fn calloc_realloc() {
    let out = run_ints(
        "fn main() {
            var a = calloc(4, 8);
            print(a[0] + a[3]);
            a[0] = 7;
            var b = realloc(a, 16 * 8);
            print(b[0]);
            b[15] = 9;
            print(b[15]);
            return 0;
        }",
        vec![],
    );
    assert_eq!(out, vec![0, 7, 9]);
}

#[test]
fn exit_code_from_main() {
    let (code, _, _) = run("fn main() { return 42; }", vec![]);
    assert_eq!(code, 42);
}

#[test]
fn nested_scopes_shadowing() {
    let out = run_ints(
        "fn main() {
            var x = 1;
            if (1) { var x = 2; print(x); }
            print(x);
            return 0;
        }",
        vec![],
    );
    assert_eq!(out, vec![2, 1]);
}

#[test]
fn pointer_arithmetic_anti_idiom_runs_clean_unhardened() {
    // The paper's snippet (c): intentional OOB base pointer, always
    // accessed in bounds.
    let out = run_ints(
        "fn main() {
            var a = malloc(8 * 8);
            var b = a - 64; // b[8] is a[0]
            for (var i = 8; i < 16; i = i + 1) { b[i] = i; }
            print(b[8]); print(a[0]); print(a[7]);
            return 0;
        }",
        vec![],
    );
    assert_eq!(out, vec![8, 8, 15]);
}

#[test]
fn compile_errors_are_reported() {
    assert!(compile("fn main() { return undefined_var; }").is_err());
    assert!(compile("fn main() { return missing_fn(); }").is_err());
    assert!(compile("fn f(a) { return a; } fn main() { return f(1, 2); }").is_err());
    assert!(compile("fn main() { break; }").is_err());
    assert!(compile("fn f() { return 0; } fn f() { return 1; } fn main() { return 0; }").is_err());
}

#[test]
fn stripped_binary_still_runs() {
    let mut image = compile("fn main() { print(1); return 0; }").unwrap();
    assert!(!image.symbols.is_empty());
    image.strip();
    let bytes = image.to_bytes();
    let image = redfat_elf::Image::parse(&bytes).unwrap();
    let rt = HostRuntime::new(ErrorMode::Abort);
    let mut emu = Emu::load_image(&image, rt).expect("loads");
    assert_eq!(emu.run(100_000), RunResult::Exited(0));
    assert_eq!(emu.runtime.io.out_ints, vec![1]);
}
