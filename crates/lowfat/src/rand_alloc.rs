//! Randomized low-fat placement (Fully Randomized Pointers style).
//!
//! Same slot discipline as the default policy -- objects occupy
//! class-size-aligned slots inside the class's 32 GiB region, so
//! `base(ptr)`/`size(ptr)` stay pure functions of the pointer -- but
//! placement is randomized along two axes:
//!
//! * **Random slot selection.** Instead of bump-allocating consecutive
//!   slots, the policy maps a window of slots up front and hands them
//!   out in random order. A pointer that skips exactly one class size
//!   past an object therefore lands in a slot that is, with probability
//!   `~(1 - occupancy)`, *free* (`E == 0` metadata) -- turning the
//!   computed-pointer neighbor-skip the deterministic policy cannot see
//!   into a detected error (EXPERIMENTS.md).
//! * **Randomized allocation offsets.** When the slot has padding to
//!   spare, the user area is shifted by a random 16-byte-aligned
//!   `delta`, so object addresses are not predictable even within a
//!   slot. The metadata extent `E = delta + size` keeps the emitted
//!   merged check exact at the object's end; the `delta` bytes of front
//!   slack are check-invisible (the documented trade-off: small
//!   underflows into the slack are missed, where the default policy's
//!   adjacent redzone catches them deterministically).
//!
//! Placement is deterministic per seed, which is what lets the lockstep
//! oracle run baseline and hardened images against two *independent*
//! policy instances and still expect identical pointer streams.

use std::collections::{HashMap, HashSet, VecDeque};

use redfat_vm::layout;
use redfat_vm::Rng64;
use redfat_vm::Vm;

use crate::alloc::{install_runtime_tables, AllocError, AllocStats, LowFatConfig};
use crate::policy::{AllocPolicy, AllocPolicyKind, Placement};

/// Target byte span of the initially mapped slot window per class.
/// Small classes get thousands of candidate slots; classes larger than
/// the target degrade to one slot and grow on demand.
const WINDOW_TARGET: u64 = 256 << 10;

/// Upper bound on the randomized allocation offset.
const MAX_DELTA: u64 = 64;

struct RandSubheap {
    /// First slot base in the region (smallest in-region multiple of the
    /// class size).
    first: u64,
    /// End of the mapped window (exclusive). Includes one trailing guard
    /// slot that is mapped but never handed out, so a one-slot skip past
    /// the last live slot still reads zeroed metadata.
    mapped_end: u64,
    /// Slot bases available for allocation, in no particular order.
    free: Vec<u64>,
    /// Recently freed slot bases, oldest first (delayed reuse).
    quarantine: VecDeque<u64>,
    /// Currently live slot bases.
    live: HashSet<u64>,
}

impl RandSubheap {
    fn new(class: usize) -> RandSubheap {
        let size = layout::class_size(class);
        let region = layout::region_base(class);
        let first = region.div_ceil(size) * size;
        RandSubheap {
            first,
            mapped_end: region,
            free: Vec::new(),
            quarantine: VecDeque::new(),
            live: HashSet::new(),
        }
    }
}

/// The randomized low-fat allocator policy.
pub struct RandLowFatAlloc {
    config: LowFatConfig,
    subheaps: Vec<RandSubheap>,
    rng: Rng64,
    stats: AllocStats,
    /// Last allocation offset handed out per slot base. Entries persist
    /// across frees (overwritten on reuse) so double-free reporting can
    /// reconstruct the user pointer of the freed object.
    deltas: HashMap<u64, u64>,
}

impl RandLowFatAlloc {
    /// Creates the policy with the given configuration (the `randomize`
    /// flag is ignored: this policy is always randomized, seeded by
    /// `config.seed`).
    pub fn new(config: LowFatConfig) -> RandLowFatAlloc {
        let rng = Rng64::new(config.seed ^ 0x7A4D_10F7_A75E_ED01);
        RandLowFatAlloc {
            config,
            subheaps: (1..=layout::NUM_CLASSES).map(RandSubheap::new).collect(),
            rng,
            stats: AllocStats::default(),
            deltas: HashMap::new(),
        }
    }

    /// Grows the mapped window of `class` and refills the free pool.
    /// Returns false when the subheap limit is exhausted.
    fn grow_window(&mut self, vm: &mut Vm, class: usize) -> bool {
        let heap = &mut self.subheaps[class - 1];
        let csize = layout::class_size(class);
        let region = layout::region_base(class);
        let used = heap.mapped_end.saturating_sub(region);
        // Growing needs room for at least one new slot plus the guard.
        if used + 2 * csize > self.config.subheap_limit {
            return false;
        }
        // First growth maps WINDOW_TARGET (at least two slots: one to
        // hand out plus the trailing guard); later growths double the
        // window. Always capped by the subheap limit.
        let want = if used == 0 {
            WINDOW_TARGET.max(2 * csize)
        } else {
            used * 2
        };
        let new_used = want.min(self.config.subheap_limit).max(used + 2 * csize);
        let new_end = region + new_used;
        if !vm.is_mapped(region) {
            vm.map(
                region,
                new_used,
                redfat_vm::Prot::RW,
                &format!("subheap{class}"),
            );
        } else {
            vm.grow(region, new_used);
        }
        // Register every complete slot in the new window except the last
        // one, which stays a mapped guard.
        let old_slots_end = if heap.mapped_end <= heap.first {
            heap.first
        } else {
            // Previous guard slot becomes allocatable now that the
            // window extends past it.
            (heap.mapped_end - heap.first) / csize * csize + heap.first - csize
        };
        let new_slots_end = ((new_end - heap.first) / csize).saturating_sub(1) * csize + heap.first;
        let mut slot = old_slots_end;
        while slot < new_slots_end {
            heap.free.push(slot);
            slot += csize;
        }
        heap.mapped_end = new_end;
        new_slots_end > old_slots_end
    }
}

impl AllocPolicy for RandLowFatAlloc {
    fn kind(&self) -> AllocPolicyKind {
        AllocPolicyKind::RandLowFat
    }

    fn install(&self, vm: &mut Vm) {
        install_runtime_tables(vm);
    }

    fn alloc_object(&mut self, vm: &mut Vm, padded: u64) -> Result<Placement, AllocError> {
        let class = layout::class_for_size(padded).ok_or(AllocError::TooLarge(padded))?;
        let csize = layout::class_size(class);
        {
            let heap = &mut self.subheaps[class - 1];
            // Overflow quarantine into the free pool.
            while heap.quarantine.len() > self.config.quarantine {
                let base = heap.quarantine.pop_front().expect("non-empty");
                heap.free.push(base);
            }
        }
        if self.subheaps[class - 1].free.is_empty() && !self.grow_window(vm, class) {
            return Err(AllocError::OutOfMemory);
        }
        let heap = &mut self.subheaps[class - 1];
        if heap.free.is_empty() {
            return Err(AllocError::OutOfMemory);
        }
        let idx = self.rng.below_usize(heap.free.len());
        let base = heap.free.swap_remove(idx);
        // Randomized allocation offset within the slot's padding.
        let slack = (csize - padded).min(MAX_DELTA);
        let delta = 16 * self.rng.below(slack / 16 + 1);
        heap.live.insert(base);
        self.deltas.insert(base, delta);
        self.stats.allocs += 1;
        self.stats.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        self.stats.bytes_requested += padded;
        Ok(Placement { base, delta })
    }

    fn free_object(&mut self, _vm: &mut Vm, base: u64) -> Result<(), AllocError> {
        let class = layout::region_index(base);
        if class == 0 || class > layout::NUM_CLASSES {
            return Err(AllocError::InvalidFree(base));
        }
        let csize = layout::class_size(class);
        if !base.is_multiple_of(csize) {
            return Err(AllocError::InvalidFree(base));
        }
        let heap = &mut self.subheaps[class - 1];
        if !heap.live.remove(&base) {
            if heap.free.contains(&base) || heap.quarantine.contains(&base) {
                return Err(AllocError::DoubleFree(base));
            }
            return Err(AllocError::InvalidFree(base));
        }
        heap.quarantine.push_back(base);
        self.stats.frees += 1;
        self.stats.live = self.stats.live.saturating_sub(1);
        Ok(())
    }

    fn delta_of(&self, base: u64) -> u64 {
        self.deltas.get(&base).copied().unwrap_or(0)
    }

    fn slot_is_live(&self, base: u64) -> bool {
        let class = layout::region_index(base);
        (1..=layout::NUM_CLASSES).contains(&class) && self.subheaps[class - 1].live.contains(&base)
    }

    fn size(&self, ptr: u64) -> u64 {
        layout::lowfat_size(ptr)
    }

    fn base(&self, ptr: u64) -> u64 {
        layout::lowfat_base(ptr)
    }

    fn stats(&self) -> AllocStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RandLowFatAlloc, Vm) {
        let mut vm = Vm::new();
        let alloc = RandLowFatAlloc::new(LowFatConfig::default());
        alloc.install(&mut vm);
        (alloc, vm)
    }

    #[test]
    fn placements_respect_the_slot_contract() {
        let (mut a, mut vm) = setup();
        for padded in [16u64, 32, 48, 64, 1024, 4096] {
            let p = a.alloc_object(&mut vm, padded).unwrap();
            let class = layout::class_for_size(padded).unwrap();
            let csize = layout::class_size(class);
            assert_eq!(p.base % csize, 0, "padded {padded}");
            assert_eq!(layout::region_index(p.base), class, "padded {padded}");
            assert_eq!(p.delta % 16, 0, "padded {padded}");
            assert!(p.delta + padded <= csize, "padded {padded}");
            assert_eq!(a.delta_of(p.base), p.delta);
            // The whole slot and the adjacent guard are readable.
            assert!(vm.read_u64(p.base + csize).is_ok() || csize >= WINDOW_TARGET);
        }
    }

    #[test]
    fn slot_order_is_randomized_but_deterministic_per_seed() {
        let order = |seed: u64| -> Vec<u64> {
            let mut vm = Vm::new();
            let mut a = RandLowFatAlloc::new(LowFatConfig {
                seed,
                ..LowFatConfig::default()
            });
            a.install(&mut vm);
            (0..32)
                .map(|_| a.alloc_object(&mut vm, 48).unwrap().base)
                .collect()
        };
        let a = order(1);
        let b = order(1);
        let c = order(2);
        assert_eq!(a, b, "same seed, same stream");
        assert_ne!(a, c, "different seed, different stream");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_ne!(a, sorted, "selection is not bump order");
        let uniq: HashSet<u64> = a.iter().copied().collect();
        assert_eq!(uniq.len(), a.len(), "no slot handed out twice");
    }

    #[test]
    fn quarantine_delays_reuse_and_double_free_detected() {
        let (mut a, mut vm) = setup();
        let p = a.alloc_object(&mut vm, 48).unwrap();
        a.free_object(&mut vm, p.base).unwrap();
        assert_eq!(
            a.free_object(&mut vm, p.base),
            Err(AllocError::DoubleFree(p.base))
        );
        let q = a.alloc_object(&mut vm, 48).unwrap();
        assert_ne!(p.base, q.base, "quarantined slot must not be reused yet");
        assert_eq!(
            a.free_object(&mut vm, layout::CODE_BASE),
            Err(AllocError::InvalidFree(layout::CODE_BASE))
        );
    }

    #[test]
    fn window_growth_reaches_the_subheap_limit() {
        let mut vm = Vm::new();
        let mut a = RandLowFatAlloc::new(LowFatConfig {
            subheap_limit: 8 << 20,
            quarantine: 0,
            ..LowFatConfig::default()
        });
        a.install(&mut vm);
        // 1 MiB objects: the initial window holds only a couple of
        // slots; keep allocating until OOM and count how many fit.
        let mut n = 0u64;
        loop {
            match a.alloc_object(&mut vm, 1 << 20) {
                Ok(_) => n += 1,
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(n >= 6, "window growth stalled at {n} slots");
        assert!(n <= 8, "exceeded the subheap limit: {n} slots");
    }

    #[test]
    fn deltas_are_zero_when_the_slot_is_exact() {
        let (mut a, mut vm) = setup();
        // padded == class size: no padding, delta must be 0.
        let p = a.alloc_object(&mut vm, 64).unwrap();
        assert_eq!(p.delta, 0);
    }

    #[test]
    fn deltas_vary_when_padding_allows() {
        let (mut a, mut vm) = setup();
        // 2 KiB class with ~1.1 KiB payload: plenty of slack. (The
        // 16-byte-spaced classes never have >= 16 bytes of padding, so
        // offsets only materialize in the power-of-two classes.)
        let deltas: HashSet<u64> = (0..64)
            .map(|_| a.alloc_object(&mut vm, 1100).unwrap().delta)
            .collect();
        assert!(deltas.len() > 1, "offsets never varied: {deltas:?}");
        assert!(deltas.iter().all(|d| d % 16 == 0 && *d <= MAX_DELTA));
    }
}
