//! The RedFat `malloc` wrapper: redzone + in-band metadata over the
//! low-fat allocator (paper §4.1, Figure 3).

use crate::alloc::{AllocError, AllocStats, LowFatAlloc, LowFatConfig};
use redfat_vm::layout;
use redfat_vm::Vm;

/// Redzone size in bytes, which doubles as the metadata block size.
pub const REDZONE_SIZE: u64 = 16;

/// The RedFat heap: `malloc(SIZE) = lowfat_malloc(SIZE + 16) + 16`.
///
/// Object layout (paper Figure 3, addresses growing up):
///
/// ```text
///   base+0   SIZE            u64: malloc size; 0 encodes Free
///   base+8   canary          u64: metadata integrity cookie
///   base+16  OBJECT          user data (SIZE bytes)
///   ...      (padding)       up to the class size
/// ```
///
/// The 16-byte prefix is the *redzone*: user code holding `ptr = base+16`
/// never legitimately accesses `[base, base+16)`, so any access there is
/// an out-of-bounds error. Because the next object in memory begins with
/// its own redzone, every object is also protected at its end (paper:
/// "the redzone at the start of the next object serves as a redzone at
/// the end of the current object").
pub struct RedFatHeap {
    alloc: LowFatAlloc,
    canary: u64,
}

impl RedFatHeap {
    /// Creates the heap with the given low-fat configuration.
    pub fn new(config: LowFatConfig) -> RedFatHeap {
        let canary = 0x5AFE_C0DE_5AFE_C0DE ^ config.seed.rotate_left(17);
        RedFatHeap {
            alloc: LowFatAlloc::new(config),
            canary,
        }
    }

    /// Installs runtime tables into the guest (see
    /// [`LowFatAlloc::install`]).
    pub fn install(&self, vm: &mut Vm) {
        self.alloc.install(vm);
    }

    /// Allocates `size` bytes and returns the user pointer (`base + 16`).
    pub fn malloc(&mut self, vm: &mut Vm, size: u64) -> Result<u64, AllocError> {
        // A guest can pass any size (e.g. `malloc(-1)`); the redzone
        // padding must not wrap around to a tiny allocation.
        let padded = size
            .checked_add(REDZONE_SIZE)
            .ok_or(AllocError::TooLarge(size))?;
        let base = self.alloc.lowfat_malloc(vm, padded)?;
        // Safety of the expects: `lowfat_malloc` just returned `base`,
        // which is mapped for at least `padded >= 16` bytes.
        vm.write_privileged(base, &size.to_le_bytes())
            .expect("fresh object mapped");
        vm.write_privileged(base + 8, &self.canary.to_le_bytes())
            .expect("fresh object mapped");
        Ok(base + REDZONE_SIZE)
    }

    /// Frees the object at user pointer `ptr`.
    ///
    /// Detects invalid frees (not an allocation) and double frees (the
    /// merged `SIZE == 0` state).
    pub fn free(&mut self, vm: &mut Vm, ptr: u64) -> Result<(), AllocError> {
        let base = layout::lowfat_base(ptr);
        if base == 0 || ptr != base + REDZONE_SIZE {
            return Err(AllocError::InvalidFree(ptr));
        }
        let size = vm
            .read_u64(base)
            .map_err(|_| AllocError::InvalidFree(ptr))?;
        if size == 0 {
            return Err(AllocError::DoubleFree(ptr));
        }
        // Merged state representation: SIZE = 0 ⇒ Free. The object stays
        // mapped (and quarantined), so dangling dereferences hit the
        // metadata check rather than unmapped memory.
        // Safety of the expect: `read_u64(base)` above succeeded, so the
        // metadata word is mapped and writable via the privileged path.
        vm.write_privileged(base, &0u64.to_le_bytes())
            .expect("object mapped");
        self.alloc.lowfat_free(vm, base)
    }

    /// `calloc`: zeroed allocation.
    pub fn calloc(&mut self, vm: &mut Vm, count: u64, elem: u64) -> Result<u64, AllocError> {
        let size = count
            .checked_mul(elem)
            .ok_or(AllocError::TooLarge(u64::MAX))?;
        let ptr = self.malloc(vm, size)?;
        // Fresh subheap memory is already zero, but reused objects are
        // not: clear explicitly.
        let zeros = vec![0u8; size as usize];
        // Safety of the expect: `malloc` above mapped at least `size`
        // bytes at `ptr`.
        vm.write_privileged(ptr, &zeros).expect("object mapped");
        Ok(ptr)
    }

    /// `realloc`: grow/shrink preserving contents.
    pub fn realloc(&mut self, vm: &mut Vm, ptr: u64, new_size: u64) -> Result<u64, AllocError> {
        if ptr == 0 {
            return self.malloc(vm, new_size);
        }
        let old_size = self
            .object_size(vm, ptr)
            .ok_or(AllocError::InvalidFree(ptr))?;
        let new_ptr = self.malloc(vm, new_size)?;
        let copy = old_size.min(new_size) as usize;
        // Safety of the expects: `object_size` proved `ptr` is inside a
        // live object of `old_size >= copy` bytes, and `malloc` just
        // mapped `new_size >= copy` bytes at `new_ptr`.
        let data = vm.read_bytes(ptr, copy).expect("old object mapped");
        vm.write_privileged(new_ptr, &data)
            .expect("new object mapped");
        self.free(vm, ptr)?;
        Ok(new_ptr)
    }

    /// Returns the malloc size of the live object containing `ptr`, or
    /// `None` if `ptr` is not inside a live heap object's user area.
    pub fn object_size(&self, vm: &Vm, ptr: u64) -> Option<u64> {
        let base = layout::lowfat_base(ptr);
        if base == 0 {
            return None;
        }
        let size = vm.read_u64(base).ok()?;
        if size == 0 || ptr < base + REDZONE_SIZE {
            return None;
        }
        Some(size)
    }

    /// Validates the metadata canary of the object containing `ptr`.
    ///
    /// Metadata hardening (paper §4.2) limits what an attacker can do by
    /// corrupting the in-band metadata from *uninstrumented* code; the
    /// canary gives the runtime an independent tamper signal used by
    /// failure-injection tests.
    pub fn check_canary(&self, vm: &Vm, ptr: u64) -> bool {
        let base = layout::lowfat_base(ptr);
        if base == 0 {
            return false;
        }
        vm.read_u64(base + 8)
            .map(|c| c == self.canary)
            .unwrap_or(false)
    }

    /// Returns allocator statistics.
    pub fn stats(&self) -> AllocStats {
        self.alloc.stats()
    }

    /// Reference implementation of the paper's Figure 4 `state()`:
    /// `Redzone` if `ptr` is within 16 bytes of the base, otherwise the
    /// merged allocated/free state read from metadata.
    pub fn state(&self, vm: &Vm, ptr: u64) -> ObjState {
        let base = layout::lowfat_base(ptr);
        if base == 0 {
            return ObjState::NonFat;
        }
        if ptr - base < REDZONE_SIZE {
            return ObjState::Redzone;
        }
        match vm.read_u64(base) {
            Ok(0) | Err(_) => ObjState::Free,
            Ok(size) => {
                if ptr - base - REDZONE_SIZE < size {
                    ObjState::Allocated
                } else {
                    ObjState::Padding
                }
            }
        }
    }
}

/// The shadow state of an address under the RedFat heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjState {
    /// Not a heap address.
    NonFat,
    /// Inside a live object's user data.
    Allocated,
    /// Inside the 16-byte metadata redzone.
    Redzone,
    /// Inside a free (or never-allocated) object.
    Free,
    /// Between the object's malloc size and its class size.
    Padding,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::LowFatConfig;

    fn setup() -> (RedFatHeap, Vm) {
        let mut vm = Vm::new();
        let heap = RedFatHeap::new(LowFatConfig::default());
        heap.install(&mut vm);
        (heap, vm)
    }

    #[test]
    fn huge_malloc_is_too_large_not_a_wraparound() {
        let (mut h, mut vm) = setup();
        // `size + REDZONE_SIZE` must not wrap to a tiny allocation.
        for size in [u64::MAX, u64::MAX - 8, u64::MAX - 15] {
            assert_eq!(
                h.malloc(&mut vm, size),
                Err(AllocError::TooLarge(size)),
                "malloc({size:#x})"
            );
        }
        // The largest non-wrapping size still classifies as too large
        // (no size class holds it), through the normal path.
        assert!(matches!(
            h.malloc(&mut vm, u64::MAX - 16),
            Err(AllocError::TooLarge(_))
        ));
    }

    #[test]
    fn malloc_layout_matches_figure3() {
        let (mut h, mut vm) = setup();
        let p = h.malloc(&mut vm, 40).unwrap();
        let base = layout::lowfat_base(p);
        assert_eq!(p, base + 16);
        // 40 + 16 rounds into the 64-byte class.
        assert_eq!(layout::lowfat_size(p), 64);
        assert_eq!(vm.read_u64(base).unwrap(), 40);
        assert_eq!(h.object_size(&vm, p), Some(40));
        assert!(h.check_canary(&vm, p));
    }

    #[test]
    fn state_classification() {
        let (mut h, mut vm) = setup();
        let p = h.malloc(&mut vm, 20).unwrap();
        let base = p - 16;
        assert_eq!(h.state(&vm, base), ObjState::Redzone);
        assert_eq!(h.state(&vm, base + 15), ObjState::Redzone);
        assert_eq!(h.state(&vm, p), ObjState::Allocated);
        assert_eq!(h.state(&vm, p + 19), ObjState::Allocated);
        // 20+16=36 -> class 48; bytes 20..32 of the object are padding.
        assert_eq!(h.state(&vm, p + 20), ObjState::Padding);
        assert_eq!(h.state(&vm, layout::CODE_BASE), ObjState::NonFat);
        h.free(&mut vm, p).unwrap();
        assert_eq!(h.state(&vm, p), ObjState::Free);
    }

    #[test]
    fn free_rejects_interior_and_foreign_pointers() {
        let (mut h, mut vm) = setup();
        let p = h.malloc(&mut vm, 24).unwrap();
        assert!(matches!(
            h.free(&mut vm, p + 4),
            Err(AllocError::InvalidFree(_))
        ));
        assert!(matches!(
            h.free(&mut vm, 0x1234),
            Err(AllocError::InvalidFree(_))
        ));
        h.free(&mut vm, p).unwrap();
        assert!(matches!(h.free(&mut vm, p), Err(AllocError::DoubleFree(_))));
    }

    #[test]
    fn calloc_zeroes_reused_memory() {
        let mut vm = Vm::new();
        let mut h = RedFatHeap::new(LowFatConfig {
            quarantine: 0,
            ..LowFatConfig::default()
        });
        h.install(&mut vm);
        let p = h.malloc(&mut vm, 32).unwrap();
        vm.write_u64(p, 0xFFFF_FFFF).unwrap();
        h.free(&mut vm, p).unwrap();
        // Drain quarantine and reuse.
        let q = h.calloc(&mut vm, 8, 4).unwrap();
        let r = h.calloc(&mut vm, 8, 4).unwrap();
        for ptr in [q, r] {
            assert_eq!(vm.read_u64(ptr).unwrap(), 0, "calloc must zero");
        }
    }

    #[test]
    fn realloc_preserves_prefix() {
        let (mut h, mut vm) = setup();
        let p = h.malloc(&mut vm, 16).unwrap();
        vm.write_u64(p, 0xAABB).unwrap();
        vm.write_u64(p + 8, 0xCCDD).unwrap();
        let q = h.realloc(&mut vm, p, 64).unwrap();
        assert_eq!(vm.read_u64(q).unwrap(), 0xAABB);
        assert_eq!(vm.read_u64(q + 8).unwrap(), 0xCCDD);
        // Old object is now free.
        assert_eq!(h.state(&vm, p), ObjState::Free);
    }

    #[test]
    fn adjacent_object_starts_with_redzone() {
        // The "end redzone" of object A is the start redzone of the next
        // object in the same class (paper Figure 3).
        let (mut h, mut vm) = setup();
        let a = h.malloc(&mut vm, 48).unwrap(); // class 64
        let b = h.malloc(&mut vm, 48).unwrap();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if hi - lo == 64 {
            // Contiguous: the byte just past lo's padding is hi's redzone.
            assert_eq!(h.state(&vm, hi - 16), ObjState::Redzone);
        }
    }

    #[test]
    fn overflow_mul_in_calloc_detected() {
        let (mut h, mut vm) = setup();
        assert!(matches!(
            h.calloc(&mut vm, u64::MAX, 2),
            Err(AllocError::TooLarge(_))
        ));
    }
}
