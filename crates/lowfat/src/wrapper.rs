//! The RedFat `malloc` wrapper: redzone + in-band metadata over a
//! pluggable allocation policy (paper §4.1, Figure 3; DESIGN.md §14).

use crate::alloc::{AllocError, AllocStats, LowFatAlloc, LowFatConfig};
use crate::policy::{AllocPolicy, AllocPolicyKind};
use crate::rand_alloc::RandLowFatAlloc;
use redfat_vm::Vm;

/// Redzone size in bytes, which doubles as the metadata block size.
pub const REDZONE_SIZE: u64 = 16;

/// The RedFat heap: `malloc(SIZE) = alloc_object(SIZE + 16) + 16 + delta`.
///
/// Object layout (paper Figure 3 generalized to a placement policy,
/// addresses growing up):
///
/// ```text
///   base+0        E               u64: user extent (delta + size);
///                                 0 encodes Free
///   base+8        canary          u64: metadata integrity cookie
///   base+16       (slack)         delta bytes (always 0 for the
///                                 default policy)
///   base+16+delta OBJECT          user data (size bytes)
///   ...           (padding)       up to the class size
/// ```
///
/// The 16-byte prefix is the *redzone*: user code holding the user
/// pointer never legitimately accesses `[base, base+16)`, so any access
/// there is an out-of-bounds error. Because the next object in memory
/// begins with its own redzone, every object is also protected at its
/// end (paper: "the redzone at the start of the next object serves as a
/// redzone at the end of the current object").
///
/// Which slot an object lands in -- and whether `delta` can be non-zero
/// -- is the policy's choice ([`AllocPolicyKind`]); the metadata
/// protocol above is fixed, which is what keeps the emitted Figure-4
/// checks policy independent.
pub struct RedFatHeap {
    policy: Box<dyn AllocPolicy>,
    canary: u64,
}

impl RedFatHeap {
    /// Creates the heap, selecting the backend named by `config.policy`.
    pub fn new(config: LowFatConfig) -> RedFatHeap {
        let canary = 0x5AFE_C0DE_5AFE_C0DE ^ config.seed.rotate_left(17);
        let policy: Box<dyn AllocPolicy> = match config.policy {
            AllocPolicyKind::LowFat => Box::new(LowFatAlloc::new(config)),
            AllocPolicyKind::RandLowFat => Box::new(RandLowFatAlloc::new(config)),
        };
        RedFatHeap { policy, canary }
    }

    /// Creates the heap for `kind` with otherwise-default configuration.
    pub fn with_policy(kind: AllocPolicyKind) -> RedFatHeap {
        RedFatHeap::new(LowFatConfig {
            policy: kind,
            ..LowFatConfig::default()
        })
    }

    /// Which policy backs this heap.
    pub fn policy_kind(&self) -> AllocPolicyKind {
        self.policy.kind()
    }

    /// The allocation offset recorded for the slot at `base` (see
    /// [`AllocPolicy::delta_of`]); 0 under the default policy.
    pub fn user_delta(&self, base: u64) -> u64 {
        self.policy.delta_of(base)
    }

    /// `base(ptr)` under this heap's policy: slot base or 0.
    pub fn slot_base(&self, ptr: u64) -> u64 {
        self.policy.base(ptr)
    }

    /// `size(ptr)` under this heap's policy: class size or `u64::MAX`.
    pub fn slot_size(&self, ptr: u64) -> u64 {
        self.policy.size(ptr)
    }

    /// Installs runtime tables into the guest (see
    /// [`AllocPolicy::install`]).
    pub fn install(&self, vm: &mut Vm) {
        self.policy.install(vm);
    }

    /// Allocates `size` bytes and returns the user pointer
    /// (`base + 16 + delta`).
    pub fn malloc(&mut self, vm: &mut Vm, size: u64) -> Result<u64, AllocError> {
        // A guest can pass any size (e.g. `malloc(-1)`); the redzone
        // padding must not wrap around to a tiny allocation. A zero-size
        // object still claims one byte past the redzone, otherwise its
        // slot would be all metadata and the user pointer would alias
        // the *next* slot's base (making the object impossible to free).
        let padded = size
            .checked_add(REDZONE_SIZE)
            .ok_or(AllocError::TooLarge(size))?
            .max(REDZONE_SIZE + 1);
        let placed = self.policy.alloc_object(vm, padded)?;
        let extent = placed.delta + size;
        // Safety of the expects: `alloc_object` just returned this slot,
        // which is mapped for at least `padded >= 16` bytes.
        vm.write_privileged(placed.base, &extent.to_le_bytes())
            .expect("fresh object mapped");
        vm.write_privileged(placed.base + 8, &self.canary.to_le_bytes())
            .expect("fresh object mapped");
        Ok(placed.base + REDZONE_SIZE + placed.delta)
    }

    /// Frees the object at user pointer `ptr`.
    ///
    /// Detects invalid frees (not exactly the user pointer of a live
    /// allocation) and double frees (the merged `E == 0` state). The one
    /// ambiguity of the merged representation -- a live *zero-size*
    /// object also reads `E == 0` -- is resolved by the policy's own
    /// bookkeeping, so `free(malloc(0))` succeeds instead of falsely
    /// reporting a double free (and leaking the slot).
    pub fn free(&mut self, vm: &mut Vm, ptr: u64) -> Result<(), AllocError> {
        let base = self.policy.base(ptr);
        if base == 0 {
            return Err(AllocError::InvalidFree(ptr));
        }
        let extent = vm
            .read_u64(base)
            .map_err(|_| AllocError::InvalidFree(ptr))?;
        if ptr != base + REDZONE_SIZE + self.policy.delta_of(base) {
            return Err(AllocError::InvalidFree(ptr));
        }
        if extent == 0 && !self.policy.slot_is_live(base) {
            return Err(AllocError::DoubleFree(ptr));
        }
        // Merged state representation: E = 0 ⇒ Free. The object stays
        // mapped (and quarantined), so dangling dereferences hit the
        // metadata check rather than unmapped memory.
        // Safety of the expect: `read_u64(base)` above succeeded, so the
        // metadata word is mapped and writable via the privileged path.
        vm.write_privileged(base, &0u64.to_le_bytes())
            .expect("object mapped");
        self.policy.free_object(vm, base)
    }

    /// `calloc`: zeroed allocation. `count * elem` overflow is a
    /// reported error, never a wrapped-around tiny allocation.
    pub fn calloc(&mut self, vm: &mut Vm, count: u64, elem: u64) -> Result<u64, AllocError> {
        let size = count
            .checked_mul(elem)
            .ok_or(AllocError::CallocOverflow { count, elem })?;
        let ptr = self.malloc(vm, size)?;
        // Fresh subheap memory is already zero, but reused objects are
        // not: clear explicitly.
        let zeros = vec![0u8; size as usize];
        // Safety of the expect: `malloc` above mapped at least `size`
        // bytes at `ptr`.
        vm.write_privileged(ptr, &zeros).expect("object mapped");
        Ok(ptr)
    }

    /// `realloc`: grow/shrink preserving contents.
    ///
    /// * `ptr == 0` behaves as `malloc(new_size)`.
    /// * `ptr` must be *exactly* the user pointer of a live object;
    ///   interior or foreign pointers are `InvalidFree` and leave the
    ///   heap untouched (previously they copied past the object's end
    ///   and leaked the new allocation).
    /// * `new_size == 0` frees the object and returns a fresh zero-size
    ///   allocation (a unique, valid-to-free pointer).
    /// * When the new user area still fits the object's slot, the
    ///   resize happens in place: the extent metadata is rewritten and
    ///   the canary re-armed, so a shrink immediately re-exposes the
    ///   tail to the merged check as padding.
    /// * Otherwise the object moves, copying
    ///   `min(old_size, new_size)` bytes; on allocation failure the
    ///   original object is left intact (C semantics).
    pub fn realloc(&mut self, vm: &mut Vm, ptr: u64, new_size: u64) -> Result<u64, AllocError> {
        if ptr == 0 {
            return self.malloc(vm, new_size);
        }
        let base = self.policy.base(ptr);
        if base == 0 {
            return Err(AllocError::InvalidFree(ptr));
        }
        let extent = vm
            .read_u64(base)
            .map_err(|_| AllocError::InvalidFree(ptr))?;
        let delta = self.policy.delta_of(base);
        if ptr != base + REDZONE_SIZE + delta || extent < delta || !self.policy.slot_is_live(base) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let old_size = extent - delta;
        if new_size == 0 {
            self.free(vm, ptr)?;
            return self.malloc(vm, 0);
        }
        let csize = self.policy.size(ptr);
        if delta + new_size + REDZONE_SIZE <= csize {
            // In-place resize: same slot, same delta, same pointer.
            let new_extent = delta + new_size;
            // Safety of the expects: the metadata word was just read, so
            // it is mapped and writable via the privileged path.
            vm.write_privileged(base, &new_extent.to_le_bytes())
                .expect("object mapped");
            vm.write_privileged(base + 8, &self.canary.to_le_bytes())
                .expect("object mapped");
            return Ok(ptr);
        }
        let new_ptr = self.malloc(vm, new_size)?;
        let copy = old_size.min(new_size) as usize;
        // Safety of the expects: `ptr` is the user pointer of a live
        // object of `old_size >= copy` bytes, and `malloc` just mapped
        // `new_size >= copy` bytes at `new_ptr`.
        let data = vm.read_bytes(ptr, copy).expect("old object mapped");
        vm.write_privileged(new_ptr, &data)
            .expect("new object mapped");
        self.free(vm, ptr)?;
        Ok(new_ptr)
    }

    /// Returns the malloc size of the live object whose *user area*
    /// contains `ptr`, or `None` otherwise.
    ///
    /// Conservative on purpose: redzone, slack, padding, free-slot and
    /// non-heap pointers all answer `None` (they are not inside any
    /// object's data), and corrupt metadata (`E < delta`) is treated as
    /// no object rather than misattributed.
    pub fn object_size(&self, vm: &Vm, ptr: u64) -> Option<u64> {
        let base = self.policy.base(ptr);
        if base == 0 {
            return None;
        }
        let extent = vm.read_u64(base).ok()?;
        if extent == 0 {
            return None;
        }
        let delta = self.policy.delta_of(base);
        let size = extent.checked_sub(delta)?;
        let user = base + REDZONE_SIZE + delta;
        if ptr < user || ptr - user >= size {
            return None;
        }
        Some(size)
    }

    /// Validates the metadata canary of the object containing `ptr`.
    ///
    /// Metadata hardening (paper §4.2) limits what an attacker can do by
    /// corrupting the in-band metadata from *uninstrumented* code; the
    /// canary gives the runtime an independent tamper signal used by
    /// failure-injection tests.
    pub fn check_canary(&self, vm: &Vm, ptr: u64) -> bool {
        let base = self.policy.base(ptr);
        if base == 0 {
            return false;
        }
        vm.read_u64(base + 8)
            .map(|c| c == self.canary)
            .unwrap_or(false)
    }

    /// Returns allocator statistics.
    pub fn stats(&self) -> AllocStats {
        self.policy.stats()
    }

    /// Reference implementation of the paper's Figure 4 `state()`:
    /// `Redzone` if `ptr` is within 16 bytes of the base, otherwise the
    /// merged allocated/free state read from metadata.
    ///
    /// This mirrors what the *emitted check* can see, so under a policy
    /// with non-zero allocation offsets the front slack classifies as
    /// `Allocated` (the check cannot distinguish it from user data);
    /// [`RedFatHeap::object_size`] gives the object-granular truth.
    pub fn state(&self, vm: &Vm, ptr: u64) -> ObjState {
        let base = self.policy.base(ptr);
        if base == 0 {
            return ObjState::NonFat;
        }
        if ptr - base < REDZONE_SIZE {
            return ObjState::Redzone;
        }
        match vm.read_u64(base) {
            Ok(0) | Err(_) => ObjState::Free,
            Ok(extent) => {
                if ptr - base - REDZONE_SIZE < extent {
                    ObjState::Allocated
                } else {
                    ObjState::Padding
                }
            }
        }
    }
}

/// The shadow state of an address under the RedFat heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjState {
    /// Not a heap address.
    NonFat,
    /// Inside a live object's check-visible extent.
    Allocated,
    /// Inside the 16-byte metadata redzone.
    Redzone,
    /// Inside a free (or never-allocated) object.
    Free,
    /// Between the object's extent and its class size.
    Padding,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::LowFatConfig;
    use redfat_vm::layout;

    fn setup() -> (RedFatHeap, Vm) {
        setup_policy(AllocPolicyKind::LowFat)
    }

    fn setup_policy(kind: AllocPolicyKind) -> (RedFatHeap, Vm) {
        let mut vm = Vm::new();
        let heap = RedFatHeap::with_policy(kind);
        heap.install(&mut vm);
        (heap, vm)
    }

    #[test]
    fn huge_malloc_is_too_large_not_a_wraparound() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            // `size + REDZONE_SIZE` must not wrap to a tiny allocation.
            for size in [u64::MAX, u64::MAX - 8, u64::MAX - 15] {
                assert_eq!(
                    h.malloc(&mut vm, size),
                    Err(AllocError::TooLarge(size)),
                    "{kind}: malloc({size:#x})"
                );
            }
            // The largest non-wrapping size still classifies as too
            // large (no size class holds it), through the normal path.
            assert!(matches!(
                h.malloc(&mut vm, u64::MAX - 16),
                Err(AllocError::TooLarge(_))
            ));
        }
    }

    #[test]
    fn malloc_layout_matches_figure3() {
        let (mut h, mut vm) = setup();
        let p = h.malloc(&mut vm, 40).unwrap();
        let base = layout::lowfat_base(p);
        assert_eq!(p, base + 16);
        // 40 + 16 rounds into the 64-byte class.
        assert_eq!(layout::lowfat_size(p), 64);
        assert_eq!(vm.read_u64(base).unwrap(), 40);
        assert_eq!(h.object_size(&vm, p), Some(40));
        assert!(h.check_canary(&vm, p));
    }

    #[test]
    fn malloc_layout_under_randomized_offsets() {
        let (mut h, mut vm) = setup_policy(AllocPolicyKind::RandLowFat);
        for _ in 0..64 {
            let p = h.malloc(&mut vm, 40).unwrap();
            let base = h.slot_base(p);
            let delta = h.user_delta(base);
            assert_eq!(p, base + 16 + delta);
            assert_eq!(p % 16, 0, "user pointers stay 16-aligned");
            assert_eq!(vm.read_u64(base).unwrap(), delta + 40);
            assert!(delta + 40 + 16 <= h.slot_size(p));
            assert_eq!(h.object_size(&vm, p), Some(40));
            assert_eq!(h.object_size(&vm, p + 39), Some(40));
            assert!(h.check_canary(&vm, p));
        }
    }

    #[test]
    fn state_classification() {
        let (mut h, mut vm) = setup();
        let p = h.malloc(&mut vm, 20).unwrap();
        let base = p - 16;
        assert_eq!(h.state(&vm, base), ObjState::Redzone);
        assert_eq!(h.state(&vm, base + 15), ObjState::Redzone);
        assert_eq!(h.state(&vm, p), ObjState::Allocated);
        assert_eq!(h.state(&vm, p + 19), ObjState::Allocated);
        // 20+16=36 -> class 48; bytes 20..32 of the object are padding.
        assert_eq!(h.state(&vm, p + 20), ObjState::Padding);
        assert_eq!(h.state(&vm, layout::CODE_BASE), ObjState::NonFat);
        h.free(&mut vm, p).unwrap();
        assert_eq!(h.state(&vm, p), ObjState::Free);
    }

    #[test]
    fn free_rejects_interior_and_foreign_pointers() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            let p = h.malloc(&mut vm, 24).unwrap();
            assert!(matches!(
                h.free(&mut vm, p + 4),
                Err(AllocError::InvalidFree(_))
            ));
            assert!(matches!(
                h.free(&mut vm, 0x1234),
                Err(AllocError::InvalidFree(_))
            ));
            h.free(&mut vm, p).unwrap();
            assert!(
                matches!(h.free(&mut vm, p), Err(AllocError::DoubleFree(_))),
                "{kind}: double free must be recognized at the old user pointer"
            );
        }
    }

    #[test]
    fn calloc_zeroes_reused_memory() {
        for kind in AllocPolicyKind::ALL {
            let mut vm = Vm::new();
            let mut h = RedFatHeap::new(LowFatConfig {
                policy: kind,
                quarantine: 0,
                ..LowFatConfig::default()
            });
            h.install(&mut vm);
            let p = h.malloc(&mut vm, 32).unwrap();
            vm.write_u64(p, 0xFFFF_FFFF).unwrap();
            h.free(&mut vm, p).unwrap();
            // Drain quarantine and reuse (under the randomized policy the
            // dirty slot may come back later; scrub a few).
            for _ in 0..8 {
                let q = h.calloc(&mut vm, 8, 4).unwrap();
                assert_eq!(vm.read_u64(q).unwrap(), 0, "{kind}: calloc must zero");
            }
        }
    }

    #[test]
    fn calloc_overflow_reports_the_factors() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            // Regression: count * elem wrapping must be an error, not a
            // tiny allocation. u64::MAX/2 * 4 wraps to u64::MAX - 3.
            let count = u64::MAX / 2;
            assert_eq!(
                h.calloc(&mut vm, count, 4),
                Err(AllocError::CallocOverflow { count, elem: 4 }),
                "{kind}"
            );
            assert_eq!(
                h.calloc(&mut vm, u64::MAX, 2),
                Err(AllocError::CallocOverflow {
                    count: u64::MAX,
                    elem: 2
                })
            );
            // Boundary: a product that does not overflow but exceeds the
            // largest class still fails through the normal path.
            assert!(matches!(
                h.calloc(&mut vm, 1 << 32, 1 << 31),
                Err(AllocError::TooLarge(_))
            ));
            assert_eq!(h.stats().allocs, 0, "{kind}: no allocation leaked");
        }
    }

    #[test]
    fn realloc_preserves_prefix() {
        let (mut h, mut vm) = setup();
        let p = h.malloc(&mut vm, 16).unwrap();
        vm.write_u64(p, 0xAABB).unwrap();
        vm.write_u64(p + 8, 0xCCDD).unwrap();
        let q = h.realloc(&mut vm, p, 64).unwrap();
        assert_eq!(vm.read_u64(q).unwrap(), 0xAABB);
        assert_eq!(vm.read_u64(q + 8).unwrap(), 0xCCDD);
        // 64 + 16 needs a bigger slot: the object moved and the old one
        // is now free.
        assert_ne!(p, q);
        assert_eq!(h.state(&vm, p), ObjState::Free);
    }

    #[test]
    fn realloc_shrink_in_place_rearms_the_boundary() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            let p = h.malloc(&mut vm, 40).unwrap();
            vm.write_u64(p, 0x11).unwrap();
            let q = h.realloc(&mut vm, p, 24).unwrap();
            assert_eq!(q, p, "{kind}: shrink fits the slot, stays in place");
            assert_eq!(vm.read_u64(q).unwrap(), 0x11, "{kind}: prefix preserved");
            assert_eq!(h.object_size(&vm, q), Some(24), "{kind}");
            // The abandoned tail is padding again: the merged check (and
            // its reference `state()`) must reject accesses there.
            assert_eq!(h.state(&vm, q + 24), ObjState::Padding, "{kind}");
            assert!(h.check_canary(&vm, q), "{kind}: canary re-armed");
            h.free(&mut vm, q).unwrap();
        }
    }

    #[test]
    fn realloc_grow_within_slot_stays_in_place() {
        let (mut h, mut vm) = setup();
        // 20 + 16 -> 48-byte class; growing to 30 still fits.
        let p = h.malloc(&mut vm, 20).unwrap();
        let q = h.realloc(&mut vm, p, 30).unwrap();
        assert_eq!(q, p);
        assert_eq!(h.object_size(&vm, q), Some(30));
        assert_eq!(h.state(&vm, q + 29), ObjState::Allocated);
        h.free(&mut vm, q).unwrap();
    }

    #[test]
    fn realloc_zero_frees_and_returns_fresh_pointer() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            let p = h.malloc(&mut vm, 48).unwrap();
            let q = h.realloc(&mut vm, p, 0).unwrap();
            assert_ne!(q, p, "{kind}: old object is gone");
            assert_eq!(h.state(&vm, p), ObjState::Free, "{kind}");
            assert_eq!(h.object_size(&vm, q), None, "{kind}: zero-size object");
            // The returned pointer is a real allocation: freeing it works.
            h.free(&mut vm, q).unwrap();
        }
    }

    #[test]
    fn realloc_rejects_interior_and_foreign_pointers() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            let p = h.malloc(&mut vm, 32).unwrap();
            vm.write_u64(p, 0xFEED).unwrap();
            let before = h.stats();
            // Regression: an interior pointer must not be treated as an
            // object (previously this copied past the object's end and
            // leaked the new allocation when the final free failed).
            assert!(matches!(
                h.realloc(&mut vm, p + 8, 64),
                Err(AllocError::InvalidFree(_))
            ));
            assert!(matches!(
                h.realloc(&mut vm, 0x4444, 64),
                Err(AllocError::InvalidFree(_))
            ));
            assert_eq!(h.stats(), before, "{kind}: failed realloc left state");
            assert_eq!(h.object_size(&vm, p), Some(32), "{kind}: object intact");
            assert_eq!(vm.read_u64(p).unwrap(), 0xFEED);
            h.free(&mut vm, p).unwrap();
            // A dangling (freed) pointer is invalid too, not a new object.
            assert!(matches!(
                h.realloc(&mut vm, p, 16),
                Err(AllocError::InvalidFree(_) | AllocError::DoubleFree(_))
            ));
        }
    }

    #[test]
    fn adjacent_object_starts_with_redzone() {
        // The "end redzone" of object A is the start redzone of the next
        // object in the same class (paper Figure 3).
        let (mut h, mut vm) = setup();
        let a = h.malloc(&mut vm, 48).unwrap(); // class 64
        let b = h.malloc(&mut vm, 48).unwrap();
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        if hi - lo == 64 {
            // Contiguous: the byte just past lo's padding is hi's redzone.
            assert_eq!(h.state(&vm, hi - 16), ObjState::Redzone);
        }
    }

    #[test]
    fn zero_size_objects_are_freeable_exactly_once() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            // Regression: malloc(0) writes E == 0, which used to make the
            // live object indistinguishable from Free -- free() reported
            // a false DoubleFree and leaked the slot.
            let p = h.malloc(&mut vm, 0).unwrap();
            h.free(&mut vm, p).unwrap();
            assert!(
                matches!(h.free(&mut vm, p), Err(AllocError::DoubleFree(_))),
                "{kind}: second free is still a double free"
            );
            // realloc can revive a zero-size object into a real one.
            let q = h.malloc(&mut vm, 0).unwrap();
            let r = h.realloc(&mut vm, q, 24).unwrap();
            assert_eq!(h.object_size(&vm, r), Some(24), "{kind}");
            h.free(&mut vm, r).unwrap();
        }
    }

    #[test]
    fn object_size_is_conservative_outside_user_data() {
        for kind in AllocPolicyKind::ALL {
            let (mut h, mut vm) = setup_policy(kind);
            let p = h.malloc(&mut vm, 20).unwrap(); // padded 36 -> 48 class
            let base = h.slot_base(p);
            assert_eq!(h.object_size(&vm, p), Some(20), "{kind}");
            assert_eq!(h.object_size(&vm, p + 19), Some(20), "{kind}");
            // Redzone, padding past the object's end, and foreign
            // pointers are not "inside the object".
            assert_eq!(h.object_size(&vm, base), None, "{kind}: metadata");
            assert_eq!(h.object_size(&vm, base + 15), None, "{kind}: redzone");
            assert_eq!(h.object_size(&vm, p + 20), None, "{kind}: padding");
            assert_eq!(h.object_size(&vm, layout::CODE_BASE), None, "{kind}");
        }
    }
}
