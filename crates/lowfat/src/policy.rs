//! The allocator-policy abstraction.
//!
//! The paper's red-zone + low-fat heap is one point in a wider design
//! space (Fully Randomized Pointers, MESH, CAMP -- see PAPERS.md). This
//! module captures the *contract* between an allocator policy and the
//! rest of the system, so alternative placement strategies can be
//! plugged in without touching the check emitter, the runtime hooks, or
//! the oracle (DESIGN.md §14).
//!
//! # What the emitted checks may assume
//!
//! The Figure-4 check sequence is compiled once and is *policy
//! independent*: it derives `base(ptr)` from the SIZES/MAGICS tables and
//! reads one metadata word at the object base. Any [`AllocPolicy`] must
//! therefore guarantee, for every object it hands out:
//!
//! 1. **Slot discipline.** The object occupies one *slot* -- a
//!    class-size-aligned chunk of the class's 32 GiB region -- so
//!    `lowfat_base(p)` computed by the table lookup lands on the slot
//!    base for any `p` inside the slot.
//! 2. **In-band metadata.** The `u64` at `base+0` holds the object's
//!    user *extent* `E`: user bytes live in `[base+16+delta,
//!    base+16+delta+size)` with `E = delta + size`, `E == 0` encodes
//!    Free (the §4.2 merged state), and `E <= class_size - 16` (the
//!    size-hardening bound). The word at `base+8` is the canary.
//! 3. **Readable guards.** Metadata reads issued by checks for stray
//!    pointers near the object (adjacent slots, region head/tail) see
//!    zeroed memory, never a fault.
//!
//! `delta` is the policy's *allocation offset*: the default low-fat
//! policy always uses `delta == 0` (the user pointer is `base + 16`),
//! while the randomized policy may shift the user area within the slot's
//! padding. A non-zero delta turns the first `delta` bytes after the
//! redzone into *slack* that the merged check cannot distinguish from
//! user data -- the probabilistic-detection trade-off discussed in
//! EXPERIMENTS.md.

use crate::alloc::{AllocError, AllocStats};
use redfat_vm::Vm;

/// Identifies a registered allocator policy (the `--alloc-policy` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPolicyKind {
    /// The paper's deterministic low-fat bump/free-list policy.
    #[default]
    LowFat,
    /// Randomized low-fat: random slot selection plus randomized
    /// allocation offsets (Fully Randomized Pointers style).
    RandLowFat,
}

impl AllocPolicyKind {
    /// Every registered policy, in canonical (wire-encoding) order.
    pub const ALL: [AllocPolicyKind; 2] = [AllocPolicyKind::LowFat, AllocPolicyKind::RandLowFat];

    /// The CLI/wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            AllocPolicyKind::LowFat => "lowfat",
            AllocPolicyKind::RandLowFat => "rand-lowfat",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<AllocPolicyKind> {
        AllocPolicyKind::ALL.into_iter().find(|k| k.as_str() == s)
    }

    /// Stable one-byte wire encoding (config canonical form v2).
    pub fn wire_byte(self) -> u8 {
        match self {
            AllocPolicyKind::LowFat => 0,
            AllocPolicyKind::RandLowFat => 1,
        }
    }

    /// Inverse of [`AllocPolicyKind::wire_byte`].
    pub fn from_wire_byte(b: u8) -> Option<AllocPolicyKind> {
        AllocPolicyKind::ALL
            .into_iter()
            .find(|k| k.wire_byte() == b)
    }
}

impl std::fmt::Display for AllocPolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Where a policy placed an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Slot base (class-size aligned; metadata lives here).
    pub base: u64,
    /// Allocation offset: the user pointer is `base + 16 + delta`.
    /// Always a multiple of 16 so user pointers stay 16-byte aligned.
    pub delta: u64,
}

/// An allocator placement policy.
///
/// Implementations own only bookkeeping; guest memory is always accessed
/// through the [`Vm`] passed in. The [`RedFatHeap`](crate::RedFatHeap)
/// wrapper layers the Figure-3 redzone/metadata protocol on top, so
/// policies deal in raw slots: `padded` sizes already include the
/// 16-byte redzone, and metadata words are written by the wrapper.
pub trait AllocPolicy: Send {
    /// Which registered policy this is.
    fn kind(&self) -> AllocPolicyKind;

    /// Installs the SIZES/MAGICS tables and region guards into the
    /// guest (the `LD_PRELOAD` analogue). Identical across policies by
    /// contract: hardened images must not depend on the policy.
    fn install(&self, vm: &mut Vm);

    /// Places an object serving `padded` bytes (user size + redzone),
    /// returning the slot base and allocation offset. The policy must
    /// ensure `delta % 16 == 0` and `delta + padded <= class_size`.
    fn alloc_object(&mut self, vm: &mut Vm, padded: u64) -> Result<Placement, AllocError>;

    /// Retires the object at slot `base` (a base previously returned by
    /// [`AllocPolicy::alloc_object`] and not freed since). The slot must
    /// stay mapped (quarantined) so dangling dereferences read `E == 0`
    /// metadata instead of faulting.
    fn free_object(&mut self, vm: &mut Vm, base: u64) -> Result<(), AllocError>;

    /// The allocation offset recorded for the object at slot `base`: the
    /// live object's delta, or the last delta the slot was handed out
    /// with (so double-free reporting can reconstruct the user pointer).
    /// 0 when the slot is unknown.
    fn delta_of(&self, base: u64) -> u64;

    /// Whether the slot at `base` currently holds a live object
    /// according to the policy's own bookkeeping. This is the tie
    /// breaker for the one state the merged metadata cannot express:
    /// a live *zero-size* object also reads `E == 0`.
    fn slot_is_live(&self, base: u64) -> bool;

    /// `size(ptr)`: class size for heap pointers, `u64::MAX` otherwise.
    /// Must agree with what the guest-side SIZES table computes.
    fn size(&self, ptr: u64) -> u64;

    /// `base(ptr)`: slot base for heap pointers, 0 otherwise. Must agree
    /// with what the guest-side check sequence computes, and never
    /// attribute `ptr` to a slot that does not contain it.
    fn base(&self, ptr: u64) -> u64;

    /// Allocation statistics.
    fn stats(&self) -> AllocStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_strings_and_wire_bytes() {
        for kind in AllocPolicyKind::ALL {
            assert_eq!(AllocPolicyKind::parse(kind.as_str()), Some(kind));
            assert_eq!(
                AllocPolicyKind::from_wire_byte(kind.wire_byte()),
                Some(kind)
            );
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert_eq!(AllocPolicyKind::parse("mesh"), None);
        assert_eq!(AllocPolicyKind::from_wire_byte(0xFF), None);
    }

    #[test]
    fn default_kind_is_the_paper_policy() {
        assert_eq!(AllocPolicyKind::default(), AllocPolicyKind::LowFat);
    }
}
