//! The low-fat memory allocator and the RedFat `malloc` wrapper.
//!
//! This crate reproduces the allocator half of the paper:
//!
//! * **Low-fat allocation** (paper §2.1, Figure 2): each size class owns a
//!   32 GiB region of the guest address space; objects are placed at
//!   global multiples of their class size, so `base(ptr)` and `size(ptr)`
//!   are computable from the pointer value alone (a table lookup plus a
//!   magic-number division).
//! * **The RedFat `malloc` wrapper** (paper §4.1, Figure 3):
//!   `malloc(SIZE) = lowfat_malloc(SIZE+16)+16`, with the 16-byte prefix
//!   serving both as the *redzone* and as in-band shadow storage for the
//!   object's `STATE`/`SIZE` metadata. The merged representation of §4.2
//!   is used: `SIZE > 0` means `Allocated` and `SIZE == 0` means `Free`,
//!   which lets the instrumentation fold the use-after-free check into the
//!   bounds check.
//!
//! The allocator runs against the simulated [`redfat_vm::Vm`]; installing
//! it into a guest (writing the SIZES/MAGICS tables to the runtime page)
//! is the reproduction's analogue of `LD_PRELOAD`-ing `libredfat.so`.

mod alloc;
mod policy;
mod rand_alloc;
mod wrapper;

pub use alloc::{AllocError, AllocStats, LowFatAlloc, LowFatConfig};
pub use policy::{AllocPolicy, AllocPolicyKind, Placement};
pub use rand_alloc::RandLowFatAlloc;
pub use wrapper::{ObjState, RedFatHeap, REDZONE_SIZE};
