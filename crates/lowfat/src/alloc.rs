//! The low-fat allocator proper: size-class subheaps in 32 GiB regions.

use redfat_vm::layout;
use redfat_vm::Rng64;
use redfat_vm::{Prot, Vm};

/// An allocation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// Request exceeds the largest size class.
    TooLarge(u64),
    /// Subheap region exhausted.
    OutOfMemory,
    /// `free` of a pointer that is not an allocation base.
    InvalidFree(u64),
    /// `free` of an object that is already free.
    DoubleFree(u64),
    /// `calloc(count, elem)` whose byte count overflows `u64`.
    CallocOverflow {
        /// Element count.
        count: u64,
        /// Element size.
        elem: u64,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::TooLarge(s) => write!(f, "allocation of {s} bytes exceeds largest class"),
            AllocError::OutOfMemory => write!(f, "subheap exhausted"),
            AllocError::InvalidFree(p) => write!(f, "invalid free of {p:#x}"),
            AllocError::DoubleFree(p) => write!(f, "double free of {p:#x}"),
            AllocError::CallocOverflow { count, elem } => {
                write!(f, "calloc({count}, {elem}) byte count overflows")
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// Allocator configuration.
#[derive(Debug, Clone)]
pub struct LowFatConfig {
    /// Which placement policy backs the heap (the `--alloc-policy` knob).
    pub policy: crate::AllocPolicyKind,
    /// Shuffle free-list reuse order (basic heap randomization, paper §8).
    pub randomize: bool,
    /// RNG seed for reproducible randomization.
    pub seed: u64,
    /// Bytes of address space each subheap may use before reporting OOM.
    /// Defaults to 16 MiB per class, ample for the workloads while keeping
    /// the simulated segments small.
    pub subheap_limit: u64,
    /// How many freed objects are quarantined before becoming reusable.
    /// Delayed reuse is what gives the `SIZE == 0` use-after-free check
    /// time to catch dangling accesses.
    pub quarantine: usize,
}

impl Default for LowFatConfig {
    fn default() -> LowFatConfig {
        LowFatConfig {
            policy: crate::AllocPolicyKind::LowFat,
            randomize: false,
            seed: 0x5EED_F00D,
            subheap_limit: 16 << 20,
            quarantine: 64,
        }
    }
}

/// Allocation statistics (for experiments and diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Number of successful allocations.
    pub allocs: u64,
    /// Number of successful frees.
    pub frees: u64,
    /// Current live objects.
    pub live: u64,
    /// Peak live objects.
    pub peak_live: u64,
    /// Total bytes requested.
    pub bytes_requested: u64,
}

struct Subheap {
    /// Next fresh (never-allocated) object base.
    next_fresh: u64,
    /// How far the backing segment has been mapped/grown.
    mapped_end: u64,
    /// Reusable object bases.
    free_list: Vec<u64>,
    /// Quarantined (recently freed) object bases, oldest first.
    quarantine: std::collections::VecDeque<u64>,
}

impl Subheap {
    fn new(class: usize) -> Subheap {
        let size = layout::class_size(class);
        let region = layout::region_base(class);
        // First object base: smallest multiple of `size` that is >= the
        // region base. Objects are aligned to *global* multiples of their
        // size, which is what makes `base(ptr)` a pure function of the
        // pointer (paper §2.1).
        let first = region.div_ceil(size) * size;
        Subheap {
            next_fresh: first,
            mapped_end: region,
            free_list: Vec::new(),
            quarantine: std::collections::VecDeque::new(),
        }
    }
}

/// The low-fat allocator.
///
/// All methods take the guest [`Vm`] explicitly; the allocator owns no
/// memory itself, only bookkeeping.
pub struct LowFatAlloc {
    config: LowFatConfig,
    subheaps: Vec<Subheap>,
    rng: Rng64,
    stats: AllocStats,
}

impl LowFatAlloc {
    /// Creates an allocator with the given configuration.
    pub fn new(config: LowFatConfig) -> LowFatAlloc {
        let rng = Rng64::new(config.seed);
        LowFatAlloc {
            config,
            subheaps: (1..=layout::NUM_CLASSES).map(Subheap::new).collect(),
            rng,
            stats: AllocStats::default(),
        }
    }

    /// Writes the SIZES/MAGICS tables to the guest runtime page.
    ///
    /// This is the reproduction's `LD_PRELOAD` analogue: generated check
    /// code reads these tables at fixed addresses; without installation
    /// every lookup yields 0 and all checks degenerate to no-ops, exactly
    /// like running a RedFat binary without `libredfat.so`.
    pub fn install(&self, vm: &mut Vm) {
        install_runtime_tables(vm);
    }

    /// Allocates `size` bytes, returning the object base address.
    ///
    /// The object is aligned to its class size and lies entirely within
    /// the class's 32 GiB region.
    pub fn lowfat_malloc(&mut self, vm: &mut Vm, size: u64) -> Result<u64, AllocError> {
        let class = layout::class_for_size(size).ok_or(AllocError::TooLarge(size))?;
        let ptr = self.alloc_in_class(vm, class)?;
        self.stats.allocs += 1;
        self.stats.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        self.stats.bytes_requested += size;
        Ok(ptr)
    }

    fn alloc_in_class(&mut self, vm: &mut Vm, class: usize) -> Result<u64, AllocError> {
        let heap = &mut self.subheaps[class - 1];
        let csize = layout::class_size(class);

        // Overflow quarantine into the free list.
        while heap.quarantine.len() > self.config.quarantine {
            let base = heap.quarantine.pop_front().expect("non-empty");
            heap.free_list.push(base);
        }

        // Prefer the free list.
        if !heap.free_list.is_empty() {
            let idx = if self.config.randomize {
                self.rng.below_usize(heap.free_list.len())
            } else {
                heap.free_list.len() - 1
            };
            return Ok(heap.free_list.swap_remove(idx));
        }

        // Bump-allocate a fresh object, growing the backing segment.
        let base = heap.next_fresh;
        let end = base + csize;
        let region = layout::region_base(class);
        if end - region > self.config.subheap_limit {
            return Err(AllocError::OutOfMemory);
        }
        if end > heap.mapped_end {
            // Grow in 64 KiB increments (or enough for one object).
            let grow_to = (end - region).next_multiple_of(64 << 10);
            let new_end = region + grow_to;
            if !vm.is_mapped(region) {
                vm.map(
                    region,
                    new_end - region,
                    Prot::RW,
                    &format!("subheap{class}"),
                );
            } else {
                vm.grow(region, new_end - region);
            }
            heap.mapped_end = new_end;
        }
        heap.next_fresh = end;
        Ok(base)
    }

    /// Frees the object whose base is `ptr`.
    ///
    /// The pointer must be exactly an allocation base (class-size
    /// aligned and below the bump frontier).
    pub fn lowfat_free(&mut self, _vm: &mut Vm, ptr: u64) -> Result<(), AllocError> {
        let class = layout::region_index(ptr);
        if class == 0 || class > layout::NUM_CLASSES {
            return Err(AllocError::InvalidFree(ptr));
        }
        let csize = layout::class_size(class);
        if !ptr.is_multiple_of(csize) {
            return Err(AllocError::InvalidFree(ptr));
        }
        let heap = &mut self.subheaps[class - 1];
        if ptr >= heap.next_fresh {
            return Err(AllocError::InvalidFree(ptr));
        }
        if heap.free_list.contains(&ptr) || heap.quarantine.contains(&ptr) {
            return Err(AllocError::DoubleFree(ptr));
        }
        heap.quarantine.push_back(ptr);
        self.stats.frees += 1;
        self.stats.live = self.stats.live.saturating_sub(1);
        Ok(())
    }

    /// `size(ptr)`: class size for heap pointers, `u64::MAX` otherwise.
    pub fn size(&self, ptr: u64) -> u64 {
        layout::lowfat_size(ptr)
    }

    /// `base(ptr)`: allocation base for heap pointers, 0 otherwise.
    pub fn base(&self, ptr: u64) -> u64 {
        layout::lowfat_base(ptr)
    }

    /// Returns allocation statistics.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }
}

/// Installs the guest-side runtime state shared by every policy: the
/// SIZES/MAGICS tables plus region head/tail guards. Policy independent
/// by contract (DESIGN.md §14) -- generated check code reads only this.
pub(crate) fn install_runtime_tables(vm: &mut Vm) {
    if !vm.is_mapped(layout::RUNTIME_BASE) {
        let size = layout::SCRATCH_BASE + layout::SCRATCH_SIZE - layout::RUNTIME_BASE;
        vm.map(layout::RUNTIME_BASE, size, Prot::RW, "libredfat");
    }
    // Reserve the head of every subheap region (zeroed ⇒ any metadata
    // read there sees SIZE == 0 ⇒ Free). The real allocator reserves
    // whole regions up front; this keeps cross-region stray pointers
    // (e.g. `array - K` landing in the previous region) reporting a
    // clean memory error instead of a segmentation fault.
    for class in 1..=layout::NUM_CLASSES {
        let region = layout::region_base(class);
        if !vm.is_mapped(region) {
            vm.map(region, 64 << 10, Prot::RW, &format!("subheap{class}"));
        }
        // Tail guard: stray pointers that underflow into the *end* of
        // a neighboring region (the `array - K` anti-idiom) must read
        // zeroed metadata, not fault.
        let tail = layout::region_base(class + 1) - (64 << 10);
        if !vm.is_mapped(tail) {
            vm.map(tail, 64 << 10, Prot::RW, &format!("subheap{class}.tail"));
        }
    }
    for (i, v) in layout::sizes_table().iter().enumerate() {
        vm.write_privileged(layout::SIZES_TABLE + 8 * i as u64, &v.to_le_bytes())
            .expect("runtime page mapped");
    }
    for (i, v) in layout::magics_table().iter().enumerate() {
        vm.write_privileged(layout::MAGICS_TABLE + 8 * i as u64, &v.to_le_bytes())
            .expect("runtime page mapped");
    }
}

impl crate::AllocPolicy for LowFatAlloc {
    fn kind(&self) -> crate::AllocPolicyKind {
        crate::AllocPolicyKind::LowFat
    }

    fn install(&self, vm: &mut Vm) {
        install_runtime_tables(vm);
    }

    fn alloc_object(
        &mut self,
        vm: &mut Vm,
        padded: u64,
    ) -> Result<crate::policy::Placement, AllocError> {
        // Deterministic placement: the user area always starts right
        // after the redzone (delta 0).
        let base = self.lowfat_malloc(vm, padded)?;
        Ok(crate::policy::Placement { base, delta: 0 })
    }

    fn free_object(&mut self, vm: &mut Vm, base: u64) -> Result<(), AllocError> {
        self.lowfat_free(vm, base)
    }

    fn delta_of(&self, _base: u64) -> u64 {
        0
    }

    fn slot_is_live(&self, base: u64) -> bool {
        // The default policy keeps no explicit live set: a slot is live
        // iff it was ever handed out (below the bump frontier, aligned)
        // and is not currently free or quarantined.
        let class = layout::region_index(base);
        if class == 0 || class > layout::NUM_CLASSES {
            return false;
        }
        if !base.is_multiple_of(layout::class_size(class)) {
            return false;
        }
        let heap = &self.subheaps[class - 1];
        base >= layout::region_base(class).div_ceil(layout::class_size(class))
            * layout::class_size(class)
            && base < heap.next_fresh
            && !heap.free_list.contains(&base)
            && !heap.quarantine.contains(&base)
    }

    fn size(&self, ptr: u64) -> u64 {
        LowFatAlloc::size(self, ptr)
    }

    fn base(&self, ptr: u64) -> u64 {
        LowFatAlloc::base(self, ptr)
    }

    fn stats(&self) -> AllocStats {
        LowFatAlloc::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (LowFatAlloc, Vm) {
        let mut vm = Vm::new();
        let alloc = LowFatAlloc::new(LowFatConfig::default());
        alloc.install(&mut vm);
        (alloc, vm)
    }

    #[test]
    fn malloc_respects_class_alignment() {
        let (mut a, mut vm) = setup();
        for size in [1u64, 16, 17, 48, 100, 1024, 1025, 5000, 1 << 20] {
            let p = a.lowfat_malloc(&mut vm, size).unwrap();
            let class = layout::class_for_size(size).unwrap();
            let csize = layout::class_size(class);
            assert_eq!(p % csize, 0, "size {size}");
            assert_eq!(layout::region_index(p), class, "size {size}");
            assert_eq!(a.base(p + size / 2), p, "size {size}");
            assert_eq!(a.size(p), csize);
        }
    }

    #[test]
    fn allocations_do_not_overlap() {
        let (mut a, mut vm) = setup();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let p = a.lowfat_malloc(&mut vm, 48).unwrap();
            assert!(seen.insert(p), "duplicate object base {p:#x}");
        }
    }

    #[test]
    fn memory_is_usable() {
        let (mut a, mut vm) = setup();
        let p = a.lowfat_malloc(&mut vm, 64).unwrap();
        vm.write_u64(p, 0x1234).unwrap();
        vm.write_u64(p + 56, 0x5678).unwrap();
        assert_eq!(vm.read_u64(p).unwrap(), 0x1234);
        assert_eq!(vm.read_u64(p + 56).unwrap(), 0x5678);
    }

    #[test]
    fn free_and_reuse_after_quarantine() {
        let mut vm = Vm::new();
        let mut a = LowFatAlloc::new(LowFatConfig {
            quarantine: 0,
            ..LowFatConfig::default()
        });
        a.install(&mut vm);
        let p = a.lowfat_malloc(&mut vm, 32).unwrap();
        a.lowfat_free(&mut vm, p).unwrap();
        // With quarantine 0, a second alloc drains the quarantine and
        // reuses the object.
        let q = a.lowfat_malloc(&mut vm, 32).unwrap();
        let r = a.lowfat_malloc(&mut vm, 32).unwrap();
        assert!(p == q || p == r, "freed object eventually reused");
    }

    #[test]
    fn quarantine_delays_reuse() {
        let (mut a, mut vm) = setup();
        let p = a.lowfat_malloc(&mut vm, 32).unwrap();
        a.lowfat_free(&mut vm, p).unwrap();
        let q = a.lowfat_malloc(&mut vm, 32).unwrap();
        assert_ne!(p, q, "quarantined object must not be immediately reused");
    }

    #[test]
    fn invalid_and_double_free_detected() {
        let (mut a, mut vm) = setup();
        assert_eq!(
            a.lowfat_free(&mut vm, layout::CODE_BASE),
            Err(AllocError::InvalidFree(layout::CODE_BASE))
        );
        let p = a.lowfat_malloc(&mut vm, 32).unwrap();
        assert_eq!(
            a.lowfat_free(&mut vm, p + 8),
            Err(AllocError::InvalidFree(p + 8))
        );
        a.lowfat_free(&mut vm, p).unwrap();
        assert_eq!(a.lowfat_free(&mut vm, p), Err(AllocError::DoubleFree(p)));
    }

    #[test]
    fn too_large_rejected() {
        let (mut a, mut vm) = setup();
        let max = layout::class_size(layout::NUM_CLASSES);
        assert!(a.lowfat_malloc(&mut vm, max).is_ok());
        assert_eq!(
            a.lowfat_malloc(&mut vm, max + 1),
            Err(AllocError::TooLarge(max + 1))
        );
    }

    #[test]
    fn oom_when_subheap_exhausted() {
        let mut vm = Vm::new();
        let mut a = LowFatAlloc::new(LowFatConfig {
            subheap_limit: 1024,
            ..LowFatConfig::default()
        });
        a.install(&mut vm);
        let mut n = 0;
        loop {
            match a.lowfat_malloc(&mut vm, 256) {
                Ok(_) => n += 1,
                Err(AllocError::OutOfMemory) => break,
                Err(e) => panic!("unexpected {e}"),
            }
        }
        assert!(n >= 3, "got {n} allocations before OOM");
    }

    #[test]
    fn randomized_reuse_differs_from_fifo() {
        let mut vm = Vm::new();
        let mut a = LowFatAlloc::new(LowFatConfig {
            randomize: true,
            quarantine: 0,
            ..LowFatConfig::default()
        });
        a.install(&mut vm);
        let ptrs: Vec<u64> = (0..64)
            .map(|_| a.lowfat_malloc(&mut vm, 32).unwrap())
            .collect();
        for &p in &ptrs {
            a.lowfat_free(&mut vm, p).unwrap();
        }
        let reused: Vec<u64> = (0..64)
            .map(|_| a.lowfat_malloc(&mut vm, 32).unwrap())
            .collect();
        // Randomized order should not be the exact LIFO order.
        let lifo: Vec<u64> = ptrs.iter().rev().copied().collect();
        assert_ne!(reused, lifo);
    }

    #[test]
    fn stats_track_lifecycle() {
        let (mut a, mut vm) = setup();
        let p = a.lowfat_malloc(&mut vm, 100).unwrap();
        let _q = a.lowfat_malloc(&mut vm, 100).unwrap();
        a.lowfat_free(&mut vm, p).unwrap();
        let s = a.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live, 1);
        assert_eq!(s.peak_live, 2);
        assert_eq!(s.bytes_requested, 200);
    }

    #[test]
    fn install_writes_tables() {
        let (_a, vm) = setup();
        assert_eq!(vm.read_u64(layout::SIZES_TABLE).unwrap(), 0);
        assert_eq!(vm.read_u64(layout::SIZES_TABLE + 8).unwrap(), 16);
        assert_eq!(
            vm.read_u64(layout::MAGICS_TABLE + 8).unwrap(),
            layout::class_magic(1)
        );
    }
}
