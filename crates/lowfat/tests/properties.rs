//! Randomized tests over the low-fat allocator and the RedFat wrapper:
//! the base/size laws of §2.1 and structural invariants under random
//! malloc/free traffic, driven by a deterministic seeded generator.

use redfat_lowfat::{LowFatConfig, ObjState, RedFatHeap, REDZONE_SIZE};
use redfat_vm::{layout, Rng64};

#[derive(Debug, Clone)]
enum Op {
    Malloc(u64),
    FreeNth(usize),
}

fn random_script(r: &mut Rng64) -> Vec<Op> {
    let n = r.below_usize(119) + 1;
    (0..n)
        .map(|_| {
            if r.coin() {
                Op::Malloc(r.range_u64(1, 5000))
            } else {
                Op::FreeNth(r.below_usize(64))
            }
        })
        .collect()
}

#[test]
fn allocator_invariants_under_random_traffic() {
    let mut r = Rng64::new(0xA110_C001);
    for case in 0..256 {
        let script = random_script(&mut r);
        let randomize = r.coin();
        let mut vm = redfat_vm::Vm::new();
        let mut heap = RedFatHeap::new(LowFatConfig {
            randomize,
            seed: 1234,
            ..LowFatConfig::default()
        });
        heap.install(&mut vm);

        let mut live: Vec<(u64, u64)> = Vec::new(); // (ptr, size)
        for op in script {
            match op {
                Op::Malloc(size) => {
                    let ptr = heap.malloc(&mut vm, size).expect("small allocs succeed");
                    // Law 1: user pointer = base + 16, base is class-aligned.
                    let base = layout::lowfat_base(ptr);
                    assert_eq!(ptr, base + REDZONE_SIZE, "case {case}");
                    let class = layout::region_index(ptr);
                    assert!((1..=layout::NUM_CLASSES).contains(&class));
                    let csize = layout::class_size(class);
                    assert_eq!(base % csize, 0);
                    assert!(size + REDZONE_SIZE <= csize);
                    // Law 2: every interior pointer maps back to base.
                    for probe in [0, size / 2, size.saturating_sub(1)] {
                        assert_eq!(layout::lowfat_base(ptr + probe), base);
                        assert_eq!(layout::lowfat_size(ptr + probe), csize);
                    }
                    // Law 3: metadata reflects the malloc size.
                    assert_eq!(heap.object_size(&vm, ptr), Some(size));
                    // Law 4: no overlap with any live object.
                    for &(other, _osize) in &live {
                        let a0 = base;
                        let a1 = base + csize;
                        let b0 = layout::lowfat_base(other);
                        let b1 = b0 + layout::lowfat_size(other);
                        assert!(a1 <= b0 || b1 <= a0, "overlap {a0:#x} {b0:#x}");
                    }
                    live.push((ptr, size));
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (ptr, _) = live.swap_remove(n % live.len());
                        heap.free(&mut vm, ptr).expect("live object frees");
                        // Freed metadata reads as Free (size 0).
                        assert_eq!(heap.object_size(&vm, ptr), None);
                    }
                }
            }
        }

        // Stats agree with the script.
        let stats = heap.stats();
        assert_eq!(stats.live as usize, live.len(), "case {case}");
    }
}

#[test]
fn nonfat_pointers_never_get_bases() {
    let mut r = Rng64::new(0xA110_C002);
    for _ in 0..4096 {
        let addr = r.below(layout::heap_start());
        assert_eq!(layout::lowfat_base(addr), 0);
        assert_eq!(layout::lowfat_size(addr), u64::MAX);
    }
}

#[test]
fn magic_division_matches_u128_reference() {
    // The machine-code path computes base via mulhi(ptr, magic);
    // verify against exact 128-bit division for random pointers.
    let mut r = Rng64::new(0xA110_C003);
    for _ in 0..16_384 {
        let class = r.below_usize(layout::NUM_CLASSES) + 1;
        let offset = r.below(layout::REGION_SIZE);
        let ptr = layout::region_base(class) + offset;
        let size = layout::class_size(class);
        let magic = layout::class_magic(class);
        let q_magic = ((ptr as u128 * magic as u128) >> 64) as u64;
        assert_eq!(q_magic, ptr / size, "class {class} ptr {ptr:#x}");
    }
}

#[test]
fn state_partitions_the_object() {
    let mut r = Rng64::new(0xA110_C004);
    for _ in 0..64 {
        let size = r.range_u64(1, 2000);
        let mut vm = redfat_vm::Vm::new();
        let mut heap = RedFatHeap::new(LowFatConfig::default());
        heap.install(&mut vm);
        let ptr = heap.malloc(&mut vm, size).unwrap();
        let base = layout::lowfat_base(ptr);
        let csize = layout::lowfat_size(ptr);
        for off in 0..csize.min(256) {
            let st = heap.state(&vm, base + off);
            let expect = if off < REDZONE_SIZE {
                ObjState::Redzone
            } else if off - REDZONE_SIZE < size {
                ObjState::Allocated
            } else {
                ObjState::Padding
            };
            assert_eq!(st, expect, "size {size} offset {off}");
        }
    }
}
