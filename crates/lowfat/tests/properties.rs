//! Randomized tests over the allocator policies and the RedFat wrapper:
//! the base/size laws of §2.1, structural invariants under random
//! malloc/free traffic, and a crafted-pointer sweep pinning conservative
//! metadata answers -- all driven by deterministic seeded generators and
//! run against every registered policy.

use redfat_lowfat::{AllocPolicyKind, LowFatConfig, ObjState, RedFatHeap, REDZONE_SIZE};
use redfat_vm::{layout, Rng64};

#[derive(Debug, Clone)]
enum Op {
    Malloc(u64),
    FreeNth(usize),
}

fn random_script(r: &mut Rng64) -> Vec<Op> {
    let n = r.below_usize(119) + 1;
    (0..n)
        .map(|_| {
            if r.coin() {
                Op::Malloc(r.range_u64(1, 5000))
            } else {
                Op::FreeNth(r.below_usize(64))
            }
        })
        .collect()
}

#[test]
fn allocator_invariants_under_random_traffic() {
    for policy in AllocPolicyKind::ALL {
        let mut r = Rng64::new(0xA110_C001);
        for case in 0..128 {
            let script = random_script(&mut r);
            let randomize = r.coin();
            let mut vm = redfat_vm::Vm::new();
            let mut heap = RedFatHeap::new(LowFatConfig {
                policy,
                randomize,
                seed: 1234,
                ..LowFatConfig::default()
            });
            heap.install(&mut vm);

            let mut live: Vec<(u64, u64)> = Vec::new(); // (ptr, size)
            for op in script {
                match op {
                    Op::Malloc(size) => {
                        let ptr = heap.malloc(&mut vm, size).expect("small allocs succeed");
                        // Law 1: user pointer = base + 16 + delta, base is
                        // class-aligned, delta respects the slot contract.
                        let base = layout::lowfat_base(ptr);
                        let delta = heap.user_delta(base);
                        assert_eq!(ptr, base + REDZONE_SIZE + delta, "{policy} case {case}");
                        if policy == AllocPolicyKind::LowFat {
                            assert_eq!(delta, 0, "default policy never offsets");
                        }
                        assert_eq!(delta % 16, 0, "user pointers stay aligned");
                        let class = layout::region_index(ptr);
                        assert!((1..=layout::NUM_CLASSES).contains(&class));
                        let csize = layout::class_size(class);
                        assert_eq!(base % csize, 0);
                        assert!(delta + size + REDZONE_SIZE <= csize);
                        // Law 2: every interior pointer maps back to base.
                        for probe in [0, size / 2, size.saturating_sub(1)] {
                            assert_eq!(layout::lowfat_base(ptr + probe), base);
                            assert_eq!(layout::lowfat_size(ptr + probe), csize);
                        }
                        // Law 3: metadata reflects the malloc size (the
                        // extent word holds delta + size).
                        assert_eq!(heap.object_size(&vm, ptr), Some(size));
                        assert_eq!(vm.read_u64(base).unwrap(), delta + size);
                        // Law 4: no overlap with any live object.
                        for &(other, _osize) in &live {
                            let a0 = base;
                            let a1 = base + csize;
                            let b0 = layout::lowfat_base(other);
                            let b1 = b0 + layout::lowfat_size(other);
                            assert!(a1 <= b0 || b1 <= a0, "overlap {a0:#x} {b0:#x}");
                        }
                        live.push((ptr, size));
                    }
                    Op::FreeNth(n) => {
                        if !live.is_empty() {
                            let (ptr, _) = live.swap_remove(n % live.len());
                            heap.free(&mut vm, ptr).expect("live object frees");
                            // Freed metadata reads as Free (extent 0).
                            assert_eq!(heap.object_size(&vm, ptr), None);
                        }
                    }
                }
            }

            // Stats agree with the script.
            let stats = heap.stats();
            assert_eq!(stats.live as usize, live.len(), "{policy} case {case}");
        }
    }
}

#[test]
fn nonfat_pointers_never_get_bases() {
    let mut r = Rng64::new(0xA110_C002);
    for _ in 0..4096 {
        let addr = r.below(layout::heap_start());
        assert_eq!(layout::lowfat_base(addr), 0);
        assert_eq!(layout::lowfat_size(addr), u64::MAX);
    }
}

#[test]
fn magic_division_matches_u128_reference() {
    // The machine-code path computes base via mulhi(ptr, magic);
    // verify against exact 128-bit division for random pointers.
    let mut r = Rng64::new(0xA110_C003);
    for _ in 0..16_384 {
        let class = r.below_usize(layout::NUM_CLASSES) + 1;
        let offset = r.below(layout::REGION_SIZE);
        let ptr = layout::region_base(class) + offset;
        let size = layout::class_size(class);
        let magic = layout::class_magic(class);
        let q_magic = ((ptr as u128 * magic as u128) >> 64) as u64;
        assert_eq!(q_magic, ptr / size, "class {class} ptr {ptr:#x}");
    }
}

#[test]
fn state_partitions_the_object() {
    for policy in AllocPolicyKind::ALL {
        let mut r = Rng64::new(0xA110_C004);
        for _ in 0..64 {
            let size = r.range_u64(1, 2000);
            let mut vm = redfat_vm::Vm::new();
            let mut heap = RedFatHeap::new(LowFatConfig {
                policy,
                ..LowFatConfig::default()
            });
            heap.install(&mut vm);
            let ptr = heap.malloc(&mut vm, size).unwrap();
            let base = layout::lowfat_base(ptr);
            let delta = heap.user_delta(base);
            let csize = layout::lowfat_size(ptr);
            for off in 0..csize.min(256) {
                let st = heap.state(&vm, base + off);
                // `state()` mirrors the emitted check: the extent covers
                // slack + user data; redzone below, padding above.
                let expect = if off < REDZONE_SIZE {
                    ObjState::Redzone
                } else if off - REDZONE_SIZE < delta + size {
                    ObjState::Allocated
                } else {
                    ObjState::Padding
                };
                assert_eq!(st, expect, "{policy} size {size} offset {off}");
            }
        }
    }
}

/// The satellite sweep: crafted interior/foreign/dangling pointers must
/// get conservative answers from every metadata query -- no panics, no
/// misattribution to a neighboring object, no state mutation from
/// rejected free/realloc calls.
#[test]
fn crafted_pointer_sweep_is_conservative() {
    for policy in AllocPolicyKind::ALL {
        let mut r = Rng64::new(0xC4AF_7ED0 ^ policy.wire_byte() as u64);
        let mut vm = redfat_vm::Vm::new();
        let mut heap = RedFatHeap::new(LowFatConfig {
            policy,
            seed: 99,
            ..LowFatConfig::default()
        });
        heap.install(&mut vm);

        // Ground truth: a population of live and freed objects across
        // classes, including zero-size and power-of-two-class objects.
        let mut live: Vec<(u64, u64)> = Vec::new();
        let mut freed: Vec<u64> = Vec::new();
        for _ in 0..96 {
            let size = match r.below(4) {
                0 => 0,
                1 => r.range_u64(1, 64),
                2 => r.range_u64(65, 1008),
                _ => r.range_u64(1009, 6000),
            };
            let p = heap.malloc(&mut vm, size).expect("allocs succeed");
            live.push((p, size));
        }
        for _ in 0..32 {
            let (p, _) = live.swap_remove(r.below_usize(live.len()));
            heap.free(&mut vm, p).expect("live frees");
            freed.push(p);
        }
        let truth_size = |ptr: u64| -> Option<u64> {
            live.iter()
                .find(|(p, s)| ptr >= *p && ptr < p + *s)
                .map(|(_, s)| *s)
        };
        let live_ptrs: std::collections::HashSet<u64> = live.iter().map(|(p, _)| *p).collect();

        // Crafted pointers: pure random, near-heap, and perturbations of
        // real (live and dangling) pointers.
        let mut crafted: Vec<u64> = Vec::new();
        for _ in 0..512 {
            crafted.push(match r.below(6) {
                0 => r.next_u64(),
                1 => r.below(layout::heap_start()),
                2 => layout::heap_end().saturating_add(r.below(1 << 40)),
                3 => {
                    let (p, _) = live[r.below_usize(live.len())];
                    p.wrapping_add(r.range_i64(-96, 96) as u64)
                }
                4 => freed[r.below_usize(freed.len())].wrapping_add(r.range_i64(-32, 32) as u64),
                _ => {
                    let class = r.below_usize(layout::NUM_CLASSES) + 1;
                    layout::region_base(class) + r.below(layout::REGION_SIZE)
                }
            });
        }
        crafted.extend([0, 1, u64::MAX, layout::heap_start(), layout::heap_end() - 1]);

        for &ptr in &crafted {
            // Never panic, whatever the pointer.
            let base = heap.slot_base(ptr);
            let ssize = heap.slot_size(ptr);
            let osize = heap.object_size(&vm, ptr);
            let state = heap.state(&vm, ptr);
            let _ = heap.check_canary(&vm, ptr);

            // base/size are the pure §2.1 functions: base never exceeds
            // the pointer and never crosses a region boundary.
            if base != 0 {
                assert!(base <= ptr, "{policy}: base {base:#x} > ptr {ptr:#x}");
                assert_eq!(
                    layout::region_index(base),
                    layout::region_index(ptr),
                    "{policy}: base crossed a region boundary"
                );
                assert!(ptr - base < ssize);
            } else {
                assert_eq!(state, ObjState::NonFat, "{policy}: {ptr:#x}");
            }

            // object_size never misattributes: a Some answer must match
            // a live object whose user area really contains the pointer.
            match (osize, truth_size(ptr)) {
                (Some(got), Some(want)) => {
                    assert_eq!(got, want, "{policy}: {ptr:#x}")
                }
                (Some(got), None) => {
                    panic!("{policy}: {ptr:#x} attributed to a {got}-byte object")
                }
                (None, _) => {} // conservative answers are always fine
            }

            // Rejected free/realloc calls must not disturb the heap.
            // (ptr == 0 is exempt: realloc(0, n) is malloc by contract.)
            if ptr != 0 && !live_ptrs.contains(&ptr) {
                let stats = heap.stats();
                assert!(heap.free(&mut vm, ptr).is_err(), "{policy}: {ptr:#x}");
                assert!(
                    heap.realloc(&mut vm, ptr, 32).is_err(),
                    "{policy}: {ptr:#x}"
                );
                assert_eq!(heap.stats(), stats, "{policy}: {ptr:#x} mutated state");
                for &(p, s) in live.iter().take(8) {
                    let want = if s == 0 { None } else { Some(s) };
                    assert_eq!(heap.object_size(&vm, p), want, "{policy}");
                }
            }
        }
    }
}
