//! Property tests over the low-fat allocator and the RedFat wrapper:
//! the base/size laws of §2.1 and structural invariants under random
//! malloc/free traffic.

use proptest::prelude::*;
use redfat_lowfat::{LowFatConfig, RedFatHeap, REDZONE_SIZE};
use redfat_vm::{layout, Vm};

#[derive(Debug, Clone)]
enum Op {
    Malloc(u64),
    FreeNth(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (1u64..5000).prop_map(Op::Malloc),
            (0usize..64).prop_map(Op::FreeNth),
        ],
        1..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn allocator_invariants_under_random_traffic(script in ops(), randomize in any::<bool>()) {
        let mut vm = Vm::new();
        let mut heap = RedFatHeap::new(LowFatConfig {
            randomize,
            seed: 1234,
            ..LowFatConfig::default()
        });
        heap.install(&mut vm);

        let mut live: Vec<(u64, u64)> = Vec::new(); // (ptr, size)
        for op in script {
            match op {
                Op::Malloc(size) => {
                    let ptr = heap.malloc(&mut vm, size).expect("small allocs succeed");
                    // Law 1: user pointer = base + 16, base is class-aligned.
                    let base = layout::lowfat_base(ptr);
                    prop_assert_eq!(ptr, base + REDZONE_SIZE);
                    let class = layout::region_index(ptr);
                    prop_assert!(class >= 1 && class <= layout::NUM_CLASSES);
                    let csize = layout::class_size(class);
                    prop_assert_eq!(base % csize, 0);
                    prop_assert!(size + REDZONE_SIZE <= csize);
                    // Law 2: every interior pointer maps back to base.
                    for probe in [0, size / 2, size.saturating_sub(1)] {
                        prop_assert_eq!(layout::lowfat_base(ptr + probe), base);
                        prop_assert_eq!(layout::lowfat_size(ptr + probe), csize);
                    }
                    // Law 3: metadata reflects the malloc size.
                    prop_assert_eq!(heap.object_size(&vm, ptr), Some(size));
                    // Law 4: no overlap with any live object.
                    for &(other, osize) in &live {
                        let a0 = base;
                        let a1 = base + csize;
                        let b0 = layout::lowfat_base(other);
                        let b1 = b0 + layout::lowfat_size(other);
                        let _ = osize;
                        prop_assert!(a1 <= b0 || b1 <= a0, "overlap {a0:#x} {b0:#x}");
                    }
                    live.push((ptr, size));
                }
                Op::FreeNth(n) => {
                    if !live.is_empty() {
                        let (ptr, _) = live.swap_remove(n % live.len());
                        heap.free(&mut vm, ptr).expect("live object frees");
                        // Freed metadata reads as Free (size 0).
                        prop_assert_eq!(heap.object_size(&vm, ptr), None);
                    }
                }
            }
        }

        // Stats agree with the script.
        let stats = heap.stats();
        prop_assert_eq!(stats.live as usize, live.len());
    }

    #[test]
    fn nonfat_pointers_never_get_bases(addr in 0u64..layout::heap_start()) {
        prop_assert_eq!(layout::lowfat_base(addr), 0);
        prop_assert_eq!(layout::lowfat_size(addr), u64::MAX);
    }

    #[test]
    fn magic_division_matches_u128_reference(
        class in 1usize..=layout::NUM_CLASSES,
        offset in 0u64..layout::REGION_SIZE,
    ) {
        // The machine-code path computes base via mulhi(ptr, magic);
        // verify against exact 128-bit division for random pointers.
        let ptr = layout::region_base(class) + offset;
        let size = layout::class_size(class);
        let magic = layout::class_magic(class);
        let q_magic = ((ptr as u128 * magic as u128) >> 64) as u64;
        prop_assert_eq!(q_magic, ptr / size, "class {} ptr {:#x}", class, ptr);
    }

    #[test]
    fn state_partitions_the_object(size in 1u64..2000) {
        let mut vm = Vm::new();
        let mut heap = RedFatHeap::new(LowFatConfig::default());
        heap.install(&mut vm);
        let ptr = heap.malloc(&mut vm, size).unwrap();
        let base = layout::lowfat_base(ptr);
        let csize = layout::lowfat_size(ptr);
        use redfat_lowfat::ObjState;
        for off in 0..csize.min(256) {
            let st = heap.state(&vm, base + off);
            let expect = if off < REDZONE_SIZE {
                ObjState::Redzone
            } else if off - REDZONE_SIZE < size {
                ObjState::Allocated
            } else {
                ObjState::Padding
            };
            prop_assert_eq!(st, expect, "offset {}", off);
        }
    }
}
