//! Minimal ELF64 images: the binary container format for the RedFat
//! reproduction.
//!
//! This crate reads and writes a real (if minimal) subset of the ELF64
//! object format: file header, `PT_LOAD` program headers, and an optional
//! `.symtab`/`.strtab` pair. That is exactly what a *stripped* binary
//! carries -- the hardening pipeline never consults symbols, mirroring the
//! paper's "minimal assumptions" requirement (§1): no relocations, no
//! DWARF, no language runtime metadata.
//!
//! Both position-dependent (`ET_EXEC`) and position-independent (`ET_DYN`)
//! binaries are supported; RedFat instruments either (§7).
//!
//! # Examples
//!
//! ```
//! use redfat_elf::{Image, ImageKind, Segment, SegFlags};
//!
//! let img = Image {
//!     kind: ImageKind::Exec,
//!     entry: 0x40_0000,
//!     segments: vec![Segment {
//!         vaddr: 0x40_0000,
//!         flags: SegFlags::RX,
//!         data: vec![0xC3],
//!         mem_size: 1,
//!     }],
//!     symbols: vec![],
//! };
//! let bytes = img.to_bytes();
//! let back = Image::parse(&bytes).unwrap();
//! assert_eq!(back.entry, 0x40_0000);
//! assert_eq!(back.segments[0].data, vec![0xC3]);
//! ```

mod image;
mod read;
mod write;

pub use image::{Image, ImageKind, SegFlags, Segment, Symbol};
pub use read::ElfError;
