//! In-memory representation of an ELF64 image.

/// Segment permission flags (`p_flags` bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegFlags(pub u32);

impl SegFlags {
    /// Execute permission.
    pub const X: SegFlags = SegFlags(1);
    /// Write permission.
    pub const W: SegFlags = SegFlags(2);
    /// Read permission.
    pub const R: SegFlags = SegFlags(4);
    /// Read + execute (text segments).
    pub const RX: SegFlags = SegFlags(5);
    /// Read + write (data segments).
    pub const RW: SegFlags = SegFlags(6);

    /// Returns `true` if the executable bit is set.
    pub fn executable(self) -> bool {
        self.0 & 1 != 0
    }

    /// Returns `true` if the writable bit is set.
    pub fn writable(self) -> bool {
        self.0 & 2 != 0
    }

    /// Returns `true` if the readable bit is set.
    pub fn readable(self) -> bool {
        self.0 & 4 != 0
    }
}

impl std::ops::BitOr for SegFlags {
    type Output = SegFlags;
    fn bitor(self, rhs: SegFlags) -> SegFlags {
        SegFlags(self.0 | rhs.0)
    }
}

/// A loadable segment (`PT_LOAD`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address.
    pub vaddr: u64,
    /// Permissions.
    pub flags: SegFlags,
    /// File contents (`p_filesz` bytes).
    pub data: Vec<u8>,
    /// In-memory size; any excess over `data.len()` is zero-filled (BSS).
    pub mem_size: u64,
}

impl Segment {
    /// Builds a segment whose memory size equals its file size.
    pub fn new(vaddr: u64, flags: SegFlags, data: Vec<u8>) -> Segment {
        let mem_size = data.len() as u64;
        Segment {
            vaddr,
            flags,
            data,
            mem_size,
        }
    }

    /// One past the last in-memory byte. Saturates at `u64::MAX` for
    /// (corrupt) segments whose declared range would wrap the address
    /// space, so address queries on a malformed image stay total.
    pub fn end(&self) -> u64 {
        self.vaddr.saturating_add(self.mem_size)
    }

    /// Returns `true` if `addr` falls within this segment's memory image.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.vaddr && addr < self.end()
    }
}

/// ELF file type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageKind {
    /// Position-dependent executable (`ET_EXEC`).
    Exec,
    /// Position-independent executable / shared object (`ET_DYN`).
    Dyn,
}

/// A symbol table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Symbol value (address).
    pub value: u64,
    /// Symbol size in bytes.
    pub size: u64,
}

/// A parsed or constructed ELF64 image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// File type.
    pub kind: ImageKind,
    /// Entry point virtual address.
    pub entry: u64,
    /// Loadable segments, sorted by `vaddr` at parse time.
    pub segments: Vec<Segment>,
    /// Optional symbols. Empty for stripped binaries.
    pub symbols: Vec<Symbol>,
}

impl Image {
    /// Removes all symbol information, as `strip(1)` would.
    ///
    /// The RedFat pipeline is exercised against stripped images in tests
    /// to prove it never depends on symbols.
    pub fn strip(&mut self) {
        self.symbols.clear();
    }

    /// Returns the segment containing `addr`, if any.
    pub fn segment_at(&self, addr: u64) -> Option<&Segment> {
        self.segments.iter().find(|s| s.contains(addr))
    }

    /// Returns a mutable reference to the segment containing `addr`.
    pub fn segment_at_mut(&mut self, addr: u64) -> Option<&mut Segment> {
        self.segments.iter_mut().find(|s| s.contains(addr))
    }

    /// Iterates over executable segments (instrumentation targets).
    pub fn exec_segments(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(|s| s.flags.executable())
    }

    /// Reads `len` bytes at virtual address `addr` from segment data.
    ///
    /// Returns `None` if the range is not fully contained in one segment's
    /// file data (BSS reads return `None`; callers treat that as zeroes if
    /// they wish).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Option<&[u8]> {
        let seg = self.segment_at(addr)?;
        let off = (addr - seg.vaddr) as usize;
        seg.data.get(off..off.checked_add(len)?)
    }

    /// Overwrites bytes at virtual address `addr` in place.
    ///
    /// Returns `false` if the range is not fully contained in one
    /// segment's file data.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> bool {
        let Some(seg) = self.segment_at_mut(addr) else {
            return false;
        };
        let off = (addr - seg.vaddr) as usize;
        let Some(end) = off.checked_add(bytes.len()) else {
            return false;
        };
        let Some(slot) = seg.data.get_mut(off..end) else {
            return false;
        };
        slot.copy_from_slice(bytes);
        true
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Total in-memory size of all segments (a scalability metric).
    /// Saturating, so corrupt declared sizes cannot overflow the sum.
    pub fn memory_footprint(&self) -> u64 {
        self.segments
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.mem_size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        Image {
            kind: ImageKind::Exec,
            entry: 0x40_0010,
            segments: vec![
                Segment::new(0x40_0000, SegFlags::RX, vec![0x90; 64]),
                Segment {
                    vaddr: 0x60_0000,
                    flags: SegFlags::RW,
                    data: vec![1, 2, 3, 4],
                    mem_size: 4096,
                },
            ],
            symbols: vec![Symbol {
                name: "main".into(),
                value: 0x40_0010,
                size: 32,
            }],
        }
    }

    #[test]
    fn segment_lookup() {
        let img = sample();
        assert!(img.segment_at(0x40_0000).is_some());
        assert!(img.segment_at(0x40_003F).is_some());
        assert!(img.segment_at(0x40_0040).is_none());
        // BSS tail is part of the segment.
        assert!(img.segment_at(0x60_0FFF).is_some());
    }

    #[test]
    fn read_write_bytes() {
        let mut img = sample();
        assert_eq!(img.read_bytes(0x60_0000, 4), Some(&[1u8, 2, 3, 4][..]));
        // Reads beyond file data fail even though memory extends further.
        assert_eq!(img.read_bytes(0x60_0002, 4), None);
        assert!(img.write_bytes(0x40_0000, &[0xC3]));
        assert_eq!(img.read_bytes(0x40_0000, 1), Some(&[0xC3u8][..]));
        assert!(!img.write_bytes(0x70_0000, &[0]));
    }

    #[test]
    fn strip_removes_symbols() {
        let mut img = sample();
        assert!(img.symbol("main").is_some());
        img.strip();
        assert!(img.symbol("main").is_none());
    }

    #[test]
    fn flags_decompose() {
        assert!(SegFlags::RX.executable());
        assert!(SegFlags::RX.readable());
        assert!(!SegFlags::RX.writable());
        assert!(SegFlags::RW.writable());
        assert_eq!(SegFlags::R | SegFlags::X, SegFlags::RX);
    }
}
