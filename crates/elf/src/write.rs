//! ELF64 serialization.

use crate::image::{Image, ImageKind};

const EHDR_SIZE: u64 = 64;
const PHDR_SIZE: u64 = 56;
const SHDR_SIZE: u64 = 64;
const SYM_SIZE: u64 = 24;

fn align_up(v: u64, a: u64) -> u64 {
    (v + a - 1) & !(a - 1)
}

impl Image {
    /// Serializes the image to ELF64 bytes.
    ///
    /// Layout: `Ehdr`, program headers, segment data (each segment's file
    /// offset congruent to its `vaddr` modulo the 4 KiB page size, as the
    /// System V ABI requires for loadable segments), then `.symtab` /
    /// `.strtab` / `.shstrtab` sections and the section header table when
    /// symbols are present.
    pub fn to_bytes(&self) -> Vec<u8> {
        let phnum = self.segments.len() as u64;
        let mut out = Vec::new();

        // Compute file offsets for segment data.
        let mut cursor = EHDR_SIZE + phnum * PHDR_SIZE;
        let mut seg_offsets = Vec::with_capacity(self.segments.len());
        for seg in &self.segments {
            // Page-congruent placement.
            let want = seg.vaddr % 4096;
            if cursor % 4096 != want {
                let bump = (want + 4096 - cursor % 4096) % 4096;
                cursor += bump;
            }
            seg_offsets.push(cursor);
            cursor += seg.data.len() as u64;
        }

        // Optional symbol machinery.
        let has_syms = !self.symbols.is_empty();
        let (symtab_off, strtab_off, shstr_off, shoff, shnum);
        let mut strtab = vec![0u8]; // index 0: empty string
        let mut sym_name_offsets = Vec::new();
        if has_syms {
            for s in &self.symbols {
                sym_name_offsets.push(strtab.len() as u32);
                strtab.extend_from_slice(s.name.as_bytes());
                strtab.push(0);
            }
            symtab_off = align_up(cursor, 8);
            let symtab_len = (self.symbols.len() as u64 + 1) * SYM_SIZE;
            strtab_off = symtab_off + symtab_len;
            shstr_off = strtab_off + strtab.len() as u64;
            // Section names: "\0.symtab\0.strtab\0.shstrtab\0".
            shoff = align_up(shstr_off + 28, 8);
            shnum = 4u64; // null + symtab + strtab + shstrtab
        } else {
            symtab_off = 0;
            strtab_off = 0;
            shstr_off = 0;
            shoff = 0;
            shnum = 0;
        }

        // ---- Ehdr ----
        out.extend_from_slice(&[0x7F, b'E', b'L', b'F', 2, 1, 1, 0]); // ident
        out.extend_from_slice(&[0; 8]); // padding
        let e_type: u16 = match self.kind {
            ImageKind::Exec => 2,
            ImageKind::Dyn => 3,
        };
        out.extend_from_slice(&e_type.to_le_bytes());
        out.extend_from_slice(&62u16.to_le_bytes()); // EM_X86_64
        out.extend_from_slice(&1u32.to_le_bytes()); // version
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&EHDR_SIZE.to_le_bytes()); // phoff
        out.extend_from_slice(&shoff.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // flags
        out.extend_from_slice(&(EHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(PHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(phnum as u16).to_le_bytes());
        out.extend_from_slice(&(SHDR_SIZE as u16).to_le_bytes());
        out.extend_from_slice(&(shnum as u16).to_le_bytes());
        let shstrndx: u16 = if has_syms { 3 } else { 0 };
        out.extend_from_slice(&shstrndx.to_le_bytes());
        debug_assert_eq!(out.len() as u64, EHDR_SIZE);

        // ---- Phdrs ----
        for (seg, &off) in self.segments.iter().zip(&seg_offsets) {
            out.extend_from_slice(&1u32.to_le_bytes()); // PT_LOAD
            out.extend_from_slice(&seg.flags.0.to_le_bytes());
            out.extend_from_slice(&off.to_le_bytes());
            out.extend_from_slice(&seg.vaddr.to_le_bytes()); // vaddr
            out.extend_from_slice(&seg.vaddr.to_le_bytes()); // paddr
            out.extend_from_slice(&(seg.data.len() as u64).to_le_bytes());
            out.extend_from_slice(&seg.mem_size.to_le_bytes());
            out.extend_from_slice(&4096u64.to_le_bytes()); // align
        }

        // ---- Segment data ----
        for (seg, &off) in self.segments.iter().zip(&seg_offsets) {
            while (out.len() as u64) < off {
                out.push(0);
            }
            out.extend_from_slice(&seg.data);
        }

        if has_syms {
            // ---- .symtab ----
            while (out.len() as u64) < symtab_off {
                out.push(0);
            }
            out.extend_from_slice(&[0u8; SYM_SIZE as usize]); // null symbol
            for (s, &name_off) in self.symbols.iter().zip(&sym_name_offsets) {
                out.extend_from_slice(&name_off.to_le_bytes());
                out.push(0x12); // STB_GLOBAL | STT_FUNC
                out.push(0); // st_other
                out.extend_from_slice(&1u16.to_le_bytes()); // st_shndx (fake)
                out.extend_from_slice(&s.value.to_le_bytes());
                out.extend_from_slice(&s.size.to_le_bytes());
            }
            // ---- .strtab ----
            debug_assert_eq!(out.len() as u64, strtab_off);
            out.extend_from_slice(&strtab);
            // ---- .shstrtab ----
            debug_assert_eq!(out.len() as u64, shstr_off);
            out.extend_from_slice(b"\0.symtab\0.strtab\0.shstrtab\0");
            out.push(0); // pad to the 28 bytes assumed above
                         // ---- Shdrs ----
            while (out.len() as u64) < shoff {
                out.push(0);
            }
            let shdr = |out: &mut Vec<u8>,
                        name: u32,
                        ty: u32,
                        off: u64,
                        size: u64,
                        link: u32,
                        entsize: u64| {
                out.extend_from_slice(&name.to_le_bytes());
                out.extend_from_slice(&ty.to_le_bytes());
                out.extend_from_slice(&0u64.to_le_bytes()); // flags
                out.extend_from_slice(&0u64.to_le_bytes()); // addr
                out.extend_from_slice(&off.to_le_bytes());
                out.extend_from_slice(&size.to_le_bytes());
                out.extend_from_slice(&link.to_le_bytes());
                out.extend_from_slice(&0u32.to_le_bytes()); // info
                out.extend_from_slice(&8u64.to_le_bytes()); // addralign
                out.extend_from_slice(&entsize.to_le_bytes());
            };
            shdr(&mut out, 0, 0, 0, 0, 0, 0); // null
            let symtab_len = (self.symbols.len() as u64 + 1) * SYM_SIZE;
            shdr(&mut out, 1, 2, symtab_off, symtab_len, 2, SYM_SIZE); // .symtab -> link .strtab
            shdr(&mut out, 9, 3, strtab_off, strtab.len() as u64, 0, 0); // .strtab
            shdr(&mut out, 17, 3, shstr_off, 28, 0, 0); // .shstrtab
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use crate::image::{Image, ImageKind, SegFlags, Segment, Symbol};

    #[test]
    fn magic_and_machine() {
        let img = Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![Segment::new(0x40_0000, SegFlags::RX, vec![0xC3])],
            symbols: vec![],
        };
        let b = img.to_bytes();
        assert_eq!(&b[..4], &[0x7F, b'E', b'L', b'F']);
        assert_eq!(b[4], 2); // ELFCLASS64
        assert_eq!(u16::from_le_bytes([b[18], b[19]]), 62); // EM_X86_64
    }

    #[test]
    fn segment_offsets_page_congruent() {
        let img = Image {
            kind: ImageKind::Exec,
            entry: 0x40_0000,
            segments: vec![
                Segment::new(0x40_0000, SegFlags::RX, vec![0x90; 100]),
                Segment::new(0x60_0123, SegFlags::RW, vec![1; 8]),
            ],
            symbols: vec![],
        };
        let b = img.to_bytes();
        // Parse the second phdr offset/vaddr.
        let ph1 = 64 + 56;
        let off = u64::from_le_bytes(b[ph1 + 8..ph1 + 16].try_into().unwrap());
        let vaddr = u64::from_le_bytes(b[ph1 + 16..ph1 + 24].try_into().unwrap());
        assert_eq!(off % 4096, vaddr % 4096);
    }

    #[test]
    fn symbols_serialize() {
        let img = Image {
            kind: ImageKind::Dyn,
            entry: 0,
            segments: vec![Segment::new(0, SegFlags::RX, vec![0xC3])],
            symbols: vec![Symbol {
                name: "f".into(),
                value: 0,
                size: 1,
            }],
        };
        let b = img.to_bytes();
        // Section header count in Ehdr.
        let shnum = u16::from_le_bytes([b[60], b[61]]);
        assert_eq!(shnum, 4);
    }
}
