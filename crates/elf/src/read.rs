//! ELF64 parsing.

use crate::image::{Image, ImageKind, SegFlags, Segment, Symbol};

/// An ELF parsing failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// Magic bytes or class/encoding are wrong.
    NotElf64,
    /// Machine is not `EM_X86_64`.
    WrongMachine(u16),
    /// File type is neither `ET_EXEC` nor `ET_DYN`.
    WrongType(u16),
    /// A header or table extends past the end of the file.
    Truncated(&'static str),
}

impl std::fmt::Display for ElfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ElfError::NotElf64 => write!(f, "not an ELF64 little-endian file"),
            ElfError::WrongMachine(m) => write!(f, "unexpected machine {m}"),
            ElfError::WrongType(t) => write!(f, "unexpected file type {t}"),
            ElfError::Truncated(what) => write!(f, "truncated {what}"),
        }
    }
}

impl std::error::Error for ElfError {}

fn get<'a>(b: &'a [u8], off: usize, len: usize, what: &'static str) -> Result<&'a [u8], ElfError> {
    off.checked_add(len)
        .and_then(|end| b.get(off..end))
        .ok_or(ElfError::Truncated(what))
}

/// `base + i * ent` with overflow reported as truncation (a corrupt
/// table offset, count, or entry size that escapes the file).
fn table_off(base: usize, i: usize, ent: usize, what: &'static str) -> Result<usize, ElfError> {
    i.checked_mul(ent)
        .and_then(|o| base.checked_add(o))
        .ok_or(ElfError::Truncated(what))
}

fn u16le(b: &[u8], off: usize) -> Result<u16, ElfError> {
    Ok(u16::from_le_bytes(
        get(b, off, 2, "u16")?.try_into().expect("2 bytes"),
    ))
}

fn u32le(b: &[u8], off: usize) -> Result<u32, ElfError> {
    Ok(u32::from_le_bytes(
        get(b, off, 4, "u32")?.try_into().expect("4 bytes"),
    ))
}

fn u64le(b: &[u8], off: usize) -> Result<u64, ElfError> {
    Ok(u64::from_le_bytes(
        get(b, off, 8, "u64")?.try_into().expect("8 bytes"),
    ))
}

impl Image {
    /// Parses ELF64 bytes into an [`Image`].
    ///
    /// Only `PT_LOAD` program headers and (optionally) `.symtab` are
    /// consumed -- the information available for a stripped binary, plus
    /// symbols when present.
    pub fn parse(bytes: &[u8]) -> Result<Image, ElfError> {
        let ident = get(bytes, 0, 8, "ident")?;
        if ident[..4] != [0x7F, b'E', b'L', b'F'] || ident[4] != 2 || ident[5] != 1 {
            return Err(ElfError::NotElf64);
        }
        let e_type = u16le(bytes, 16)?;
        let kind = match e_type {
            2 => ImageKind::Exec,
            3 => ImageKind::Dyn,
            other => return Err(ElfError::WrongType(other)),
        };
        let machine = u16le(bytes, 18)?;
        if machine != 62 {
            return Err(ElfError::WrongMachine(machine));
        }
        let entry = u64le(bytes, 24)?;
        let phoff = u64le(bytes, 32)? as usize;
        let shoff = u64le(bytes, 40)? as usize;
        let phentsize = u16le(bytes, 54)? as usize;
        let phnum = u16le(bytes, 56)? as usize;
        let shentsize = u16le(bytes, 58)? as usize;
        let shnum = u16le(bytes, 60)? as usize;

        let mut segments = Vec::new();
        for i in 0..phnum {
            let ph = table_off(phoff, i, phentsize, "program header")?;
            // Bound the header slot before the field offsets below are
            // added to `ph`, so a corrupt `phoff` cannot overflow them.
            get(bytes, ph, 56, "program header")?;
            let p_type = u32le(bytes, ph)?;
            if p_type != 1 {
                continue; // not PT_LOAD
            }
            let flags = u32le(bytes, ph + 4)?;
            let off = u64le(bytes, ph + 8)? as usize;
            let vaddr = u64le(bytes, ph + 16)?;
            let filesz = u64le(bytes, ph + 32)? as usize;
            let memsz = u64le(bytes, ph + 40)?;
            let data = get(bytes, off, filesz, "segment data")?.to_vec();
            segments.push(Segment {
                vaddr,
                flags: SegFlags(flags),
                data,
                mem_size: memsz,
            });
        }
        segments.sort_by_key(|s| s.vaddr);

        // Optional symbols: find SHT_SYMTAB.
        let mut symbols = Vec::new();
        if shoff != 0 && shnum != 0 {
            let mut symtab: Option<(usize, usize, usize)> = None; // off, size, link
            for i in 0..shnum {
                let sh = table_off(shoff, i, shentsize, "section header")?;
                get(bytes, sh, 48, "section header")?;
                let sh_type = u32le(bytes, sh + 4)?;
                if sh_type == 2 {
                    let off = u64le(bytes, sh + 24)? as usize;
                    let size = u64le(bytes, sh + 32)? as usize;
                    let link = u32le(bytes, sh + 40)? as usize;
                    symtab = Some((off, size, link));
                    break;
                }
            }
            if let Some((off, size, link)) = symtab {
                let str_sh = table_off(shoff, link, shentsize, "string section header")?;
                get(bytes, str_sh, 48, "string section header")?;
                let str_off = u64le(bytes, str_sh + 24)? as usize;
                let str_size = u64le(bytes, str_sh + 32)? as usize;
                let strtab = get(bytes, str_off, str_size, "strtab")?;
                // Bound the whole table first: a corrupt declared size
                // must not drive the entry loop past the file (or into
                // an effectively unbounded iteration count).
                get(bytes, off, size, "symtab")?;
                let nsyms = size / 24;
                for i in 1..nsyms {
                    let s = off + i * 24;
                    let name_off = u32le(bytes, s)? as usize;
                    let value = u64le(bytes, s + 8)?;
                    let sym_size = u64le(bytes, s + 16)?;
                    let name_bytes = strtab
                        .get(name_off..)
                        .ok_or(ElfError::Truncated("symbol name"))?;
                    let end = name_bytes
                        .iter()
                        .position(|&c| c == 0)
                        .ok_or(ElfError::Truncated("symbol name nul"))?;
                    let name = String::from_utf8_lossy(&name_bytes[..end]).into_owned();
                    symbols.push(Symbol {
                        name,
                        value,
                        size: sym_size,
                    });
                }
            }
        }

        Ok(Image {
            kind,
            entry,
            segments,
            symbols,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Image {
        Image {
            kind: ImageKind::Exec,
            entry: 0x40_0020,
            segments: vec![
                Segment::new(0x40_0000, SegFlags::RX, (0..200u8).collect()),
                Segment {
                    vaddr: 0x60_0100,
                    flags: SegFlags::RW,
                    data: vec![9; 32],
                    mem_size: 8192,
                },
            ],
            symbols: vec![
                Symbol {
                    name: "main".into(),
                    value: 0x40_0020,
                    size: 64,
                },
                Symbol {
                    name: "helper".into(),
                    value: 0x40_0080,
                    size: 16,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_with_symbols() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = Image::parse(&bytes).expect("parses");
        assert_eq!(back, img);
    }

    #[test]
    fn roundtrip_stripped() {
        let mut img = sample();
        img.strip();
        let bytes = img.to_bytes();
        let back = Image::parse(&bytes).expect("parses");
        assert_eq!(back, img);
        assert!(back.symbols.is_empty());
    }

    #[test]
    fn roundtrip_pie() {
        let mut img = sample();
        img.kind = ImageKind::Dyn;
        let back = Image::parse(&img.to_bytes()).expect("parses");
        assert_eq!(back.kind, ImageKind::Dyn);
    }

    #[test]
    fn rejects_junk() {
        assert_eq!(Image::parse(&[0; 16]), Err(ElfError::NotElf64));
        assert!(Image::parse(b"\x7fELF").is_err());
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut bytes = sample().to_bytes();
        bytes[18] = 0x03; // EM_386
        assert_eq!(Image::parse(&bytes), Err(ElfError::WrongMachine(3)));
    }

    #[test]
    fn bss_memsize_preserved() {
        let img = sample();
        let back = Image::parse(&img.to_bytes()).unwrap();
        assert_eq!(back.segments[1].mem_size, 8192);
        assert_eq!(back.segments[1].data.len(), 32);
    }
}
