//! E9Patch-style static binary rewriting by trampoline (paper §2.2).
//!
//! The rewriter takes an ELF image plus a list of *patches* -- an anchor
//! instruction address and a payload generator -- and produces a new
//! image in which each anchor has been replaced by a jump to a trampoline
//! that executes:
//!
//! 1. the payload (e.g. a RedFat check),
//! 2. the displaced original instruction(s), re-encoded at their new
//!    location (RIP-relative operands and branch targets are fixed up
//!    automatically because the instruction model stores them as
//!    absolute addresses), and
//! 3. a jump back to the instruction after the patch site.
//!
//! # Patch tactics
//!
//! A `jmp rel32` needs 5 bytes. Real E9Patch reaches 100% patchability
//! with instruction punning; this reproduction implements a simplified
//! but behavior-complete tactic set:
//!
//! * **T-jmp**: displace a run of consecutive instructions totaling ≥ 5
//!   bytes into the trampoline, provided no interior instruction is a
//!   potential jump target (conservative CFG). The patch site becomes a
//!   `jmp rel32` plus NOP padding.
//! * **T-trap**: when no safe 5-byte run exists, the anchor's first byte
//!   becomes `int3` and an entry is added to an in-binary *trap table*
//!   that the loader registers with the emulator -- the analogue of
//!   E9Patch's signal-based fallback, and priced accordingly by the cost
//!   model.
//!
//! Rewriting never moves a jump target and never changes program-visible
//! behavior of unpatched code; integration tests assert output equality
//! between original and rewritten binaries with empty payloads.

use redfat_analysis::{Cfg, Disasm};
use redfat_elf::{Image, SegFlags, Segment};
use redfat_vm::layout;
use redfat_x86::{encode, Asm, AsmError, Inst, Op, Operands, Width};

/// A payload generator: emits instrumentation into the trampoline
/// assembler. It must fall through on the success path (the displaced
/// instructions follow immediately).
pub type Payload<'a> = Box<dyn FnMut(&mut Asm) -> Result<(), AsmError> + 'a>;

/// One requested patch.
pub struct Patch<'a> {
    /// Address of the anchor instruction.
    pub anchor: u64,
    /// Instrumentation to run before the anchor executes.
    pub payload: Payload<'a>,
}

/// Rewrite statistics (reported by the scalability experiments).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteStats {
    /// Patches applied with the 5-byte jump tactic.
    pub jmp_patches: usize,
    /// Patches that fell back to the `int3` trap tactic.
    pub trap_patches: usize,
    /// Total instructions displaced into trampolines.
    pub displaced: usize,
    /// Bytes of trampoline code emitted.
    pub trampoline_bytes: usize,
    /// Patch sites skipped because their anchor (or a displaced group
    /// member) does not decode -- the opportunistic-hardening fallback
    /// for corrupt or undecodable code. Zero on well-formed inputs.
    pub skipped_sites: usize,
}

/// A rewrite failure.
///
/// Undecodable anchors are *not* an error: they degrade to
/// skip-site-and-record (see [`RewriteStats::skipped_sites`]), matching
/// the paper's opportunistic-hardening model.
#[derive(Debug)]
pub enum RewriteError {
    /// Trampoline assembly failed.
    Asm(AsmError),
    /// Patch anchors were not strictly increasing / unique.
    UnorderedPatches(u64),
    /// The code bytes at a patch site could not be written back.
    PatchWrite(u64),
}

impl std::fmt::Display for RewriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RewriteError::Asm(e) => write!(f, "trampoline assembly failed: {e}"),
            RewriteError::UnorderedPatches(a) => {
                write!(f, "patch anchors must be unique and sorted (at {a:#x})")
            }
            RewriteError::PatchWrite(a) => write!(f, "cannot write patch bytes at {a:#x}"),
        }
    }
}

impl std::error::Error for RewriteError {}

impl From<AsmError> for RewriteError {
    fn from(e: AsmError) -> RewriteError {
        RewriteError::Asm(e)
    }
}

/// The outcome of a rewrite.
pub struct RewriteOutput {
    /// The rewritten image (original segments modified in place, plus a
    /// trampoline segment and, if needed, a trap-table segment).
    pub image: Image,
    /// Statistics.
    pub stats: RewriteStats,
}

/// Magic quadword marking the trap-table segment (shared with the
/// emulator's loader).
pub const TRAP_TABLE_MAGIC: u64 = 0x5041_5254_4642_5244;

/// Where a rewrite places its new segments. The defaults suit a single
/// image at the standard layout; hardening several images into one
/// address space (separately instrumented shared objects, paper §7.4)
/// passes disjoint bases per image.
#[derive(Debug, Clone, Copy)]
pub struct RewriteBases {
    /// First byte of emitted trampoline code.
    pub trampoline: u64,
    /// Base of the `int3` trap-table segment (if any traps are used).
    pub trap_table: u64,
}

impl Default for RewriteBases {
    fn default() -> RewriteBases {
        RewriteBases {
            trampoline: layout::TRAMPOLINE_BASE,
            trap_table: layout::TRAP_TABLE_BASE,
        }
    }
}

/// Applies `patches` to `image` at the default segment bases.
///
/// `disasm`/`cfg` must describe `image` (callers already have them from
/// planning). Patches must be sorted by strictly increasing anchor.
pub fn rewrite(
    image: &Image,
    disasm: &Disasm,
    cfg: &Cfg,
    patches: Vec<Patch<'_>>,
) -> Result<RewriteOutput, RewriteError> {
    rewrite_with_bases(image, disasm, cfg, patches, RewriteBases::default())
}

/// Applies `patches` to `image`, placing trampolines and trap table at
/// the given bases.
pub fn rewrite_with_bases(
    image: &Image,
    disasm: &Disasm,
    cfg: &Cfg,
    mut patches: Vec<Patch<'_>>,
    bases: RewriteBases,
) -> Result<RewriteOutput, RewriteError> {
    let mut out = image.clone();
    let mut stats = RewriteStats::default();
    let mut tramp = Asm::new(bases.trampoline);
    let mut traps: Vec<(u64, u64)> = Vec::new();

    // Validate ordering.
    for w in patches.windows(2) {
        if w[1].anchor <= w[0].anchor {
            return Err(RewriteError::UnorderedPatches(w[1].anchor));
        }
    }
    let anchors: Vec<u64> = patches.iter().map(|p| p.anchor).collect();

    for (i, patch) in patches.iter_mut().enumerate() {
        let anchor = patch.anchor;
        let next_anchor = anchors.get(i + 1).copied();
        // Opportunistic degradation: an anchor that does not decode
        // (possible only for corrupt or adversarial code bytes) cannot
        // be patched. The site is skipped and recorded instead of
        // failing the whole rewrite.
        let Some(&(anchor_inst, anchor_len)) = disasm.at(anchor) else {
            stats.skipped_sites += 1;
            continue;
        };

        // Select and decode the displaced group *before* emitting any
        // trampoline bytes, so a member that fails to resolve degrades
        // to a clean skip rather than leaving a half-built trampoline.
        let group = select_group(disasm, cfg, anchor, next_anchor).and_then(|members| {
            members
                .iter()
                .map(|&addr| disasm.at(addr).map(|&(inst, len)| (inst, len)))
                .collect::<Option<Vec<(Inst, u8)>>>()
        });

        let tramp_start = tramp.here();
        (patch.payload)(&mut tramp)?;

        match group {
            Some(members) => {
                // T-jmp: re-encode displaced instructions in the
                // trampoline, then jump back.
                let mut group_len = 0u64;
                let mut terminal = false;
                for &(inst, len) in &members {
                    group_len += len as u64;
                    tramp.emit(reencode_check(inst))?;
                    stats.displaced += 1;
                    terminal = always_transfers(&inst);
                }
                let resume = anchor + group_len;
                if !terminal {
                    tramp.jmp_abs(resume)?;
                }
                // Patch site: jmp rel32 + NOP padding.
                let jmp = encode(
                    &Inst::new(Op::Jmp, Width::W64, Operands::Rel(tramp_start)),
                    anchor,
                )
                .map_err(|e| RewriteError::Asm(AsmError::Encode(e)))?;
                let mut site = Vec::with_capacity(group_len as usize);
                if jmp.len() == 2 {
                    // Encoder picked rel8 (trampoline unusually close);
                    // keep it and pad the rest.
                    site.extend_from_slice(&jmp);
                } else {
                    debug_assert_eq!(jmp.len(), 5);
                    site.extend_from_slice(&jmp);
                }
                while (site.len() as u64) < group_len {
                    site.push(0x90);
                }
                if !out.write_bytes(anchor, &site) {
                    return Err(RewriteError::PatchWrite(anchor));
                }
                stats.jmp_patches += 1;
            }
            None => {
                // T-trap: int3 at the anchor's first byte; the displaced
                // instruction is just the anchor.
                tramp.emit(reencode_check(anchor_inst))?;
                stats.displaced += 1;
                if !always_transfers(&anchor_inst) {
                    tramp.jmp_abs(anchor + anchor_len as u64)?;
                }
                if !out.write_bytes(anchor, &[0xCC]) {
                    return Err(RewriteError::PatchWrite(anchor));
                }
                traps.push((anchor, tramp_start));
                stats.trap_patches += 1;
            }
        }
    }

    let tramp_prog = tramp.finish()?;
    stats.trampoline_bytes = tramp_prog.bytes.len();
    if !tramp_prog.bytes.is_empty() {
        out.segments.push(Segment::new(
            tramp_prog.base,
            SegFlags::RX,
            tramp_prog.bytes,
        ));
    }
    if !traps.is_empty() {
        let mut table = Vec::with_capacity(16 + traps.len() * 16);
        table.extend_from_slice(&TRAP_TABLE_MAGIC.to_le_bytes());
        table.extend_from_slice(&(traps.len() as u64).to_le_bytes());
        for (a, t) in traps {
            table.extend_from_slice(&a.to_le_bytes());
            table.extend_from_slice(&t.to_le_bytes());
        }
        out.segments
            .push(Segment::new(bases.trap_table, SegFlags::R, table));
    }

    Ok(RewriteOutput { image: out, stats })
}

/// Chooses the run of instructions to displace for a 5-byte jump patch,
/// or `None` if the trap tactic must be used.
fn select_group(
    disasm: &Disasm,
    cfg: &Cfg,
    anchor: u64,
    next_anchor: Option<u64>,
) -> Option<Vec<u64>> {
    let mut members = Vec::new();
    let mut total = 0u64;
    let mut addr = anchor;
    loop {
        let (_, len) = *disasm.at(addr)?;
        members.push(addr);
        total += len as u64;
        if total >= 5 {
            return Some(members);
        }
        let next = addr + len as u64;
        // The next instruction would become patch-interior: it must not
        // be a potential jump target, another patch's anchor, or unknown.
        if cfg.is_leader(next) || next_anchor == Some(next) || disasm.at(next).is_none() {
            return None;
        }
        addr = next;
    }
}

/// Returns `true` if the instruction unconditionally transfers control
/// (so the trampoline's jump-back would be unreachable).
fn always_transfers(inst: &Inst) -> bool {
    matches!(inst.op, Op::Jmp | Op::JmpInd | Op::Ret | Op::Ud2)
}

/// Sanity hook for displaced instructions; exists so future tactics can
/// transform instructions during displacement.
fn reencode_check(inst: Inst) -> Inst {
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use redfat_analysis::{disassemble, Cfg};
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_x86::{AluOp, Asm, Cond, Mem, Reg, Width};

    fn build_image(f: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new(layout::CODE_BASE);
        f(&mut a);
        let p = a.finish().unwrap();
        Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        }
    }

    fn no_payload<'a>() -> Payload<'a> {
        Box::new(|_| Ok(()))
    }

    #[test]
    fn patches_long_instruction_with_jmp() {
        // mov $1, %rax is 7 bytes: direct jmp tactic.
        let img = build_image(|a| {
            a.mov_ri(Width::W64, Reg::Rax, 1);
            a.ret();
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let out = rewrite(
            &img,
            &d,
            &cfg,
            vec![Patch {
                anchor: layout::CODE_BASE,
                payload: no_payload(),
            }],
        )
        .unwrap();
        assert_eq!(out.stats.jmp_patches, 1);
        assert_eq!(out.stats.trap_patches, 0);
        // Site now starts with E9 (jmp rel32).
        assert_eq!(out.image.read_bytes(layout::CODE_BASE, 1).unwrap()[0], 0xE9);
        // A trampoline segment exists.
        assert!(out.image.segment_at(layout::TRAMPOLINE_BASE).is_some());
    }

    #[test]
    fn short_instruction_displaces_group() {
        // push (1 byte) followed by a 7-byte mov: group of 2.
        let img = build_image(|a| {
            a.push_r(Reg::Rax); // 1 byte
            a.mov_ri(Width::W64, Reg::Rbx, 2); // 7 bytes
            a.ret();
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let out = rewrite(
            &img,
            &d,
            &cfg,
            vec![Patch {
                anchor: layout::CODE_BASE,
                payload: no_payload(),
            }],
        )
        .unwrap();
        assert_eq!(out.stats.jmp_patches, 1);
        assert_eq!(out.stats.displaced, 2);
    }

    #[test]
    fn leader_blocks_group_forcing_trap() {
        // A 3-byte store whose next instruction is a jump target: cannot
        // displace a 5-byte group, must trap.
        let img = build_image(|a| {
            let l = a.label();
            a.mov_mr(Width::W64, Mem::base(Reg::Rax), Reg::Rcx); // 3 bytes
            a.bind(l).unwrap();
            a.alu_ri(AluOp::Sub, Width::W64, Reg::Rcx, 1);
            a.jcc_label(Cond::Ne, l);
            a.ret();
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let out = rewrite(
            &img,
            &d,
            &cfg,
            vec![Patch {
                anchor: layout::CODE_BASE,
                payload: no_payload(),
            }],
        )
        .unwrap();
        assert_eq!(out.stats.trap_patches, 1);
        assert_eq!(out.image.read_bytes(layout::CODE_BASE, 1).unwrap()[0], 0xCC);
        // Trap table segment emitted with one entry.
        let seg = out.image.segment_at(layout::TRAP_TABLE_BASE).unwrap();
        let count = u64::from_le_bytes(seg.data[8..16].try_into().unwrap());
        assert_eq!(count, 1);
    }

    #[test]
    fn adjacent_patches_do_not_overlap() {
        // Two 3-byte stores back to back, both patched: the first cannot
        // take the second (the second is its own anchor), so it traps;
        // the second extends into the following mov.
        let img = build_image(|a| {
            a.mov_mr(Width::W64, Mem::base(Reg::Rax), Reg::Rcx);
            a.mov_mr(Width::W64, Mem::base(Reg::Rbx), Reg::Rdx);
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.ret();
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let a2 = d.next_addr(layout::CODE_BASE).unwrap();
        let out = rewrite(
            &img,
            &d,
            &cfg,
            vec![
                Patch {
                    anchor: layout::CODE_BASE,
                    payload: no_payload(),
                },
                Patch {
                    anchor: a2,
                    payload: no_payload(),
                },
            ],
        )
        .unwrap();
        assert_eq!(out.stats.trap_patches, 1);
        assert_eq!(out.stats.jmp_patches, 1);
    }

    #[test]
    fn rip_relative_operand_survives_displacement() {
        // A rip-relative instruction moved into a trampoline keeps its
        // *absolute* target: the encoder recomputes the rel32 for the new
        // address. A stale displacement would silently read/compute a
        // different address after relocation.
        let target = 0x1234_5678u64;
        let img = build_image(|a| {
            a.lea(Reg::Rdi, redfat_x86::Mem::rip(target)); // 7 bytes: jmp tactic
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall(); // exit(rdi)
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let out = rewrite(
            &img,
            &d,
            &cfg,
            vec![Patch {
                anchor: layout::CODE_BASE,
                payload: no_payload(),
            }],
        )
        .unwrap();
        assert_eq!(out.stats.jmp_patches, 1);

        // The displaced copy decodes back to the same absolute target.
        let tramp = out.image.segment_at(layout::TRAMPOLINE_BASE).unwrap();
        let insts = redfat_x86::decode_all(&tramp.data, layout::TRAMPOLINE_BASE);
        let lea = insts
            .iter()
            .find_map(|(_, i, _)| match (i.op, &i.operands) {
                (redfat_x86::Op::Lea, redfat_x86::Operands::RM { src, .. }) => Some(*src),
                _ => None,
            })
            .expect("displaced lea present in trampoline");
        assert!(lea.rip);
        assert_eq!(lea.disp as u64, target);

        // Both images compute the same address at runtime.
        use redfat_emu::{Emu, ErrorMode, HostRuntime};
        let base = Emu::load_image(&img, HostRuntime::new(ErrorMode::Log))
            .expect("loads")
            .run(10_000);
        let hard = Emu::load_image(&out.image, HostRuntime::new(ErrorMode::Log))
            .expect("loads")
            .run(10_000);
        assert_eq!(base.expect_exit(), target as i64);
        assert_eq!(hard.expect_exit(), target as i64);
    }

    #[test]
    fn unsorted_patches_rejected() {
        let img = build_image(|a| {
            a.mov_ri(Width::W64, Reg::Rax, 1);
            a.mov_ri(Width::W64, Reg::Rbx, 2);
            a.ret();
        });
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let a2 = d.next_addr(layout::CODE_BASE).unwrap();
        let err = rewrite(
            &img,
            &d,
            &cfg,
            vec![
                Patch {
                    anchor: a2,
                    payload: no_payload(),
                },
                Patch {
                    anchor: layout::CODE_BASE,
                    payload: no_payload(),
                },
            ],
        );
        assert!(matches!(err, Err(RewriteError::UnorderedPatches(_))));
    }

    #[test]
    fn bad_anchor_skipped_and_recorded() {
        // An anchor that does not decode degrades to skip-and-record:
        // the rewrite succeeds, the site is counted, and the image is
        // byte-identical to the input (no patch, no trampoline).
        let img = build_image(|a| a.ret());
        let d = disassemble(&img);
        let cfg = Cfg::recover(&d, img.entry, &[]);
        let out = rewrite(
            &img,
            &d,
            &cfg,
            vec![Patch {
                anchor: 0x12345,
                payload: no_payload(),
            }],
        )
        .unwrap();
        assert_eq!(out.stats.skipped_sites, 1);
        assert_eq!(out.stats.jmp_patches, 0);
        assert_eq!(out.stats.trap_patches, 0);
        assert_eq!(out.image, img);
    }
}
