//! Randomized test: identity rewriting (empty payloads on every
//! heap-reachable access) preserves the behavior of *random* compiled
//! programs -- the strongest evidence that trampoline displacement,
//! RIP-relative fix-ups and patch-tactic selection are sound. Driven by
//! a deterministic seeded generator.

use redfat_analysis::{can_reach_heap, disassemble, plan_batches, Cfg};
use redfat_emu::{Emu, ErrorMode, HostRuntime, RunResult};
use redfat_minic::compile;
use redfat_rewriter::{rewrite, Patch};
use redfat_vm::Rng64;

fn random_program(r: &mut Rng64) -> String {
    let elems = r.range_u64(2, 10);
    let n_ops = r.below_usize(12) + 2;
    let mut body = String::new();
    for _ in 0..n_ops {
        let slot = r.below(10);
        let val = r.range_i64(1, 30);
        let idx = slot % elems;
        match r.below(6) {
            0 => body.push_str(&format!("a[{idx}] = s + {val};\n")),
            1 => body.push_str(&format!("s = s + a[{idx}];\n")),
            2 => body.push_str(&format!("s = s * {val} % 10007;\n")),
            3 => body.push_str(&format!("while (s > {val}) {{ s = s - {val}; }}\n")),
            4 => body.push_str(&format!("s = s + helper(a[{idx}], {val});\n")),
            _ => body.push_str(&format!("if (s % 3 == 0) {{ a[{idx}] = {val}; }}\n")),
        }
    }
    format!(
        "fn helper(x, y) {{ return x * 2 + y; }}
        fn main() {{
            var a = malloc({elems} * 8);
            for (var i = 0; i < {elems}; i = i + 1) {{ a[i] = i + 1; }}
            var s = 1;
            {body}
            print(s);
            for (var i = 0; i < {elems}; i = i + 1) {{ print(a[i]); }}
            return 0;
        }}"
    )
}

#[test]
fn identity_rewrite_preserves_random_programs() {
    let mut r = Rng64::new(0x4E1_0001);
    for case in 0..64 {
        let src = random_program(&mut r);
        let image = compile(&src).expect("compiles");
        let mut base_emu =
            Emu::load_image(&image, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        let base = base_emu.run(20_000_000);
        assert_eq!(base, RunResult::Exited(0), "case {case}");
        let base_out = base_emu.runtime.io.out_ints.clone();

        let d = disassemble(&image);
        let cfg = Cfg::recover(&d, image.entry, &[]);
        let batches = plan_batches(&d, &cfg, true, |_, i| {
            i.memory_access().is_some_and(|m| can_reach_heap(&m))
        });
        let patches: Vec<Patch> = batches
            .iter()
            .map(|b| Patch {
                anchor: b.anchor,
                payload: Box::new(|_: &mut redfat_x86::Asm| Ok(())),
            })
            .collect();
        let n_patches = patches.len();
        let out = rewrite(&image, &d, &cfg, patches).expect("rewrites");
        assert!(n_patches > 0, "case {case}: programs always touch the heap");

        let mut emu =
            Emu::load_image(&out.image, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        let result = emu.run(40_000_000);
        assert_eq!(result, RunResult::Exited(0), "case {case}");
        assert_eq!(emu.runtime.io.out_ints, base_out, "case {case}");
    }
}
