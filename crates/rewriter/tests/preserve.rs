//! End-to-end property: rewriting with empty payloads preserves program
//! behavior exactly (same outputs, same exit code), for both patch
//! tactics and for patches on every memory-access instruction of a real
//! little program.

use redfat_analysis::{disassemble, plan_batches, Cfg};
use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::{syscalls, Emu, ErrorMode, HostRuntime, RunResult};
use redfat_rewriter::{rewrite, Patch};
use redfat_vm::layout;
use redfat_x86::{AluOp, Asm, Cond, Mem, Reg, Width};

fn build_image(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(layout::CODE_BASE);
    f(&mut a);
    let p = a.finish().unwrap();
    Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
        symbols: vec![],
    }
}

/// A program with a loop, calls, heap traffic and both patch tactics:
/// allocates a 10-element array, fills it with squares, prints the sum.
fn demo_program(a: &mut Asm) {
    let fill = a.named_label("fill");
    let done = a.label();
    let loop_top = a.label();

    // main: rbx = malloc(80)
    a.mov_ri(Width::W64, Reg::Rdi, 80);
    a.mov_ri(Width::W64, Reg::Rax, syscalls::MALLOC as i64);
    a.syscall();
    a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
    a.call_label(fill);
    // sum loop
    a.mov_ri(Width::W64, Reg::Rcx, 0);
    a.mov_ri(Width::W64, Reg::Rsi, 0);
    a.bind(loop_top).unwrap();
    a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rcx, 10);
    a.jcc_label(Cond::Ge, done);
    a.alu_rm(
        AluOp::Add,
        Width::W64,
        Reg::Rsi,
        Mem::bis(Reg::Rbx, Reg::Rcx, 8, 0),
    );
    a.alu_ri(AluOp::Add, Width::W64, Reg::Rcx, 1);
    a.jmp_label(loop_top);
    a.bind(done).unwrap();
    a.mov_rr(Width::W64, Reg::Rdi, Reg::Rsi);
    a.mov_ri(Width::W64, Reg::Rax, syscalls::PRINT_INT as i64);
    a.syscall();
    a.mov_ri(Width::W64, Reg::Rdi, 0);
    a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
    a.syscall();

    // fill(rbx): array[i] = i*i
    a.bind(fill).unwrap();
    a.mov_ri(Width::W64, Reg::Rcx, 0);
    let ftop = a.label();
    let fend = a.label();
    a.bind(ftop).unwrap();
    a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rcx, 10);
    a.jcc_label(Cond::Ge, fend);
    a.mov_rr(Width::W64, Reg::Rax, Reg::Rcx);
    a.imul_rr(Width::W64, Reg::Rax, Reg::Rcx);
    a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rcx, 8, 0), Reg::Rax);
    a.alu_ri(AluOp::Add, Width::W64, Reg::Rcx, 1);
    a.jmp_label(ftop);
    a.bind(fend).unwrap();
    a.ret();
}

fn run(image: &Image) -> (RunResult, Vec<i64>, u64) {
    let mut emu = Emu::load_image(image, HostRuntime::new(ErrorMode::Abort)).expect("loads");
    let result = emu.run(1_000_000);
    let ints = emu.runtime.io.out_ints.clone();
    (result, ints, emu.counters.cycles)
}

#[test]
fn identity_rewrite_preserves_behavior() {
    let img = build_image(demo_program);
    let (r0, out0, cycles0) = run(&img);
    assert_eq!(r0, RunResult::Exited(0));
    assert_eq!(out0, vec![285]); // 0+1+4+...+81

    // Patch every heap-reachable memory access with an empty payload.
    let d = disassemble(&img);
    let cfg = Cfg::recover(&d, img.entry, &[]);
    let batches = plan_batches(&d, &cfg, true, |_, i| {
        i.memory_access()
            .is_some_and(|m| redfat_analysis::can_reach_heap(&m))
    });
    assert!(!batches.is_empty(), "demo program has checkable accesses");
    let patches: Vec<Patch> = batches
        .iter()
        .map(|b| Patch {
            anchor: b.anchor,
            payload: Box::new(|_: &mut Asm| Ok(())),
        })
        .collect();
    let out = rewrite(&img, &d, &cfg, patches).unwrap();

    let (r1, out1, cycles1) = run(&out.image);
    assert_eq!(r1, RunResult::Exited(0));
    assert_eq!(out1, out0, "rewriting must not change output");
    assert!(
        cycles1 > cycles0,
        "trampoline jumps must cost something: {cycles1} vs {cycles0}"
    );
}

#[test]
fn identity_rewrite_on_stripped_binary() {
    let mut img = build_image(demo_program);
    img.symbols.push(redfat_elf::Symbol {
        name: "main".into(),
        value: layout::CODE_BASE,
        size: 0,
    });
    img.strip();
    let bytes = img.to_bytes();
    let img = Image::parse(&bytes).unwrap();

    let d = disassemble(&img);
    let cfg = Cfg::recover(&d, img.entry, &[]);
    let batches = plan_batches(&d, &cfg, false, |_, i| {
        i.memory_access()
            .is_some_and(|m| redfat_analysis::can_reach_heap(&m))
    });
    let patches: Vec<Patch> = batches
        .iter()
        .map(|b| Patch {
            anchor: b.anchor,
            payload: Box::new(|_: &mut Asm| Ok(())),
        })
        .collect();
    let out = rewrite(&img, &d, &cfg, patches).unwrap();
    let (r1, out1, _) = run(&out.image);
    assert_eq!(r1, RunResult::Exited(0));
    assert_eq!(out1, vec![285]);
}

#[test]
fn trap_tactic_preserves_behavior() {
    // Force the trap tactic: patch a 3-byte store immediately followed by
    // a jump target.
    let img = build_image(|a| {
        // rbx = malloc(32)
        a.mov_ri(Width::W64, Reg::Rdi, 32);
        a.mov_ri(Width::W64, Reg::Rax, syscalls::MALLOC as i64);
        a.syscall();
        a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
        a.mov_ri(Width::W64, Reg::Rcx, 3);
        a.mov_mr(Width::W64, Mem::base(Reg::Rbx), Reg::Rcx); // 3-byte store...
        let top = a.label();
        a.bind(top).unwrap(); // ...whose next instruction is a jump target
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rcx, 1);
        a.jcc_label(Cond::Ne, top);
        a.mov_rm(Width::W64, Reg::Rdi, Mem::base(Reg::Rbx));
        a.mov_ri(Width::W64, Reg::Rax, syscalls::PRINT_INT as i64);
        a.syscall();
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
        a.syscall();
    });
    let (r0, out0, _) = run(&img);
    assert_eq!(r0, RunResult::Exited(0));

    let d = disassemble(&img);
    let cfg = Cfg::recover(&d, img.entry, &[]);
    // Find the store instruction (mov %rcx, (%rbx)).
    let store = d
        .iter()
        .find(|(_, i, _)| {
            i.memory_access().is_some_and(|m| m.base == Some(Reg::Rbx)) && i.writes_memory()
        })
        .map(|(a, _, _)| a)
        .unwrap();
    let out = rewrite(
        &img,
        &d,
        &cfg,
        vec![Patch {
            anchor: store,
            payload: Box::new(|_: &mut Asm| Ok(())),
        }],
    )
    .unwrap();
    assert_eq!(out.stats.trap_patches, 1, "must use the trap tactic");

    let (r1, out1, _) = run(&out.image);
    assert_eq!(r1, RunResult::Exited(0));
    assert_eq!(out1, out0);
}

#[test]
fn payload_executes_before_displaced_instruction() {
    // Payload writes a sentinel to a global; the displaced instruction
    // then overwrites a different global. Both must happen, in order.
    let img = {
        let mut a = Asm::new(layout::CODE_BASE);
        a.mov_ri(Width::W64, Reg::Rax, 7); // 7-byte anchor
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
        a.syscall();
        let p = a.finish().unwrap();
        Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(p.base, SegFlags::RX, p.bytes),
                Segment::new(layout::GLOBALS_BASE, SegFlags::RW, vec![0; 16]),
            ],
            symbols: vec![],
        }
    };
    let d = disassemble(&img);
    let cfg = Cfg::recover(&d, img.entry, &[]);
    let out = rewrite(
        &img,
        &d,
        &cfg,
        vec![Patch {
            anchor: layout::CODE_BASE,
            payload: Box::new(|a: &mut Asm| {
                // Uses rax before the displaced mov sets it: proves the
                // payload runs first. Store marker without clobbering
                // anything live (rax is dead here).
                a.mov_ri(Width::W64, Reg::Rax, 0x77);
                a.mov_mr(Width::W64, Mem::abs(layout::GLOBALS_BASE as i64), Reg::Rax);
                Ok(())
            }),
        }],
    )
    .unwrap();
    let mut emu = Emu::load_image(&out.image, HostRuntime::new(ErrorMode::Abort)).expect("loads");
    let r = emu.run(10_000);
    assert_eq!(r, RunResult::Exited(0));
    assert_eq!(emu.vm.read_u64(layout::GLOBALS_BASE).unwrap(), 0x77);
    // The displaced mov still executed.
    assert_eq!(emu.cpu.get(Reg::Rax), syscalls::EXIT);
}
