//! A Valgrind-Memcheck-style baseline: redzone-only memory error
//! detection by **dynamic binary instrumentation**.
//!
//! The paper's principal comparator (Table 1 last column, Table 2) is
//! Valgrind Memcheck: a heavyweight DBI tool that JIT-translates the
//! binary and interposes on every memory access, tracking addressability
//! in shadow memory. This crate reproduces that *methodology* on the
//! emulator substrate:
//!
//! * the guest binary runs **uninstrumented** -- detection happens in the
//!   [`redfat_emu::Runtime::on_memory_access`] hook, exactly where a DBI
//!   tool's inserted checks would run;
//! * an object-granular shadow map (live ranges, freed ranges, redzones)
//!   classifies each heap access, giving Memcheck's redzone-only
//!   detection power: incremental overflows, underflows and
//!   use-after-free are caught, but accesses that **skip over redzones**
//!   into other live objects are not (paper Problem #1, Table 2);
//! * the JIT/dispatch overhead of DBI is modeled by a per-instruction
//!   dispatch cost plus a per-access check cost
//!   ([`MemcheckRuntime::cost_model`]), calibrated to land in the ~10x
//!   regime the paper measures for Memcheck with leak checking and
//!   undef-value tracking disabled;
//! * Valgrind's documented inability to run some SPEC benchmarks
//!   (`dealII`, `zeusmp`: huge data segments, 80-bit x87) is modeled by
//!   [`MemcheckLimits`].

use redfat_elf::Image;
use redfat_emu::{
    syscalls, CostModel, Cpu, ErrorMode, HostRuntime, MemErrKind, MemoryError, Runtime,
    SyscallOutcome,
};
use redfat_vm::{layout, Vm};
use std::collections::BTreeMap;

/// Why Memcheck cannot run a given binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NotRunnable {
    /// Data segment exceeds what Valgrind can map (documented SPEC
    /// failure for `dealII`).
    DataSegmentTooLarge(u64),
    /// The workload requires 80-bit x87 extended precision, which
    /// Valgrind truncates to 64-bit (documented SPEC failure for
    /// `zeusmp`).
    RequiresX87,
}

impl std::fmt::Display for NotRunnable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NotRunnable::DataSegmentTooLarge(sz) => {
                write!(f, "data segment of {sz} bytes exceeds Memcheck's limit")
            }
            NotRunnable::RequiresX87 => write!(f, "requires 80-bit x87 arithmetic"),
        }
    }
}

/// Modeled environmental limits of the Memcheck baseline.
#[derive(Debug, Clone, Copy)]
pub struct MemcheckLimits {
    /// Largest total data-segment size Memcheck will map.
    pub max_data_segment: u64,
}

impl Default for MemcheckLimits {
    fn default() -> MemcheckLimits {
        MemcheckLimits {
            max_data_segment: 32 << 20,
        }
    }
}

impl MemcheckLimits {
    /// Checks whether `image` is runnable under the modeled limits.
    ///
    /// `requires_x87` is workload-provenance metadata: this reproduction's
    /// ISA subset has no x87, so the flag records which synthetic SPEC
    /// stand-ins correspond to x87-dependent originals.
    pub fn check(&self, image: &Image, requires_x87: bool) -> Result<(), NotRunnable> {
        if requires_x87 {
            return Err(NotRunnable::RequiresX87);
        }
        let data: u64 = image
            .segments
            .iter()
            .filter(|s| !s.flags.executable())
            .map(|s| s.mem_size)
            .sum();
        if data > self.max_data_segment {
            return Err(NotRunnable::DataSegmentTooLarge(data));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ObjState {
    Live { size: u64 },
    Freed { size: u64 },
}

/// The Memcheck-style runtime: delegates services to the standard host
/// runtime, maintains an object-granular shadow map, and checks every
/// guest memory access.
pub struct MemcheckRuntime {
    /// Underlying service runtime (allocator, IO).
    pub inner: HostRuntime,
    /// Shadow map: user pointer → object state.
    objects: BTreeMap<u64, ObjState>,
    /// Detected errors.
    pub errors: Vec<MemoryError>,
    /// Abort or log.
    pub mode: ErrorMode,
    /// Modeled per-access check cost in cycles.
    pub check_cost: u64,
    /// Pending abort (set by the access hook, surfaced at the next
    /// syscall-like boundary via `take_fatal`).
    fatal: Option<MemoryError>,
}

impl MemcheckRuntime {
    /// Creates the runtime.
    pub fn new(mode: ErrorMode) -> MemcheckRuntime {
        MemcheckRuntime {
            inner: HostRuntime::new(ErrorMode::Log),
            objects: BTreeMap::new(),
            errors: Vec::new(),
            mode,
            check_cost: 13,
            fatal: None,
        }
    }

    /// Sets the guest input queue.
    pub fn with_input(mut self, input: Vec<i64>) -> MemcheckRuntime {
        self.inner = self.inner.with_input(input);
        self
    }

    /// The cost model a Memcheck run should use: DBI dispatch on every
    /// instruction, on top of the defaults.
    pub fn cost_model() -> CostModel {
        CostModel {
            dbi_dispatch: 10,
            ..CostModel::default()
        }
    }

    /// Takes the fatal error recorded by the access hook, if any.
    pub fn take_fatal(&mut self) -> Option<MemoryError> {
        self.fatal.take()
    }

    /// Leak check (the `--leak-check` feature the paper disables for its
    /// fair-comparison runs): objects still live at this point, as
    /// `(user_ptr, size)` pairs in address order.
    pub fn leaked(&self) -> Vec<(u64, u64)> {
        self.objects
            .iter()
            .filter_map(|(&ptr, st)| match st {
                ObjState::Live { size } => Some((ptr, *size)),
                ObjState::Freed { .. } => None,
            })
            .collect()
    }

    /// Classifies a heap access. Returns the detected error kind, if any.
    fn classify(&self, addr: u64, len: u8) -> Option<MemErrKind> {
        // Only heap addresses are shadow-tracked.
        if addr < layout::heap_start() || addr >= layout::heap_end() {
            return None;
        }
        // Find the nearest object at or below addr.
        let (&user, state) = self.objects.range(..=addr).next_back()?;
        match *state {
            ObjState::Live { size } => {
                if addr + len as u64 <= user + size {
                    None // in bounds
                } else if addr < user + size {
                    // Straddles the end: partial overflow.
                    Some(MemErrKind::Bounds)
                } else {
                    // Past the object: redzone / padding / gap, *unless*
                    // it falls inside another live object (the skip case
                    // Memcheck cannot see) -- handled by the range lookup
                    // having picked this object only if no closer one
                    // exists. If the address belongs to no object's
                    // accessible range it is unaddressable.
                    Some(MemErrKind::Bounds)
                }
            }
            ObjState::Freed { size } => {
                if addr < user + size {
                    Some(MemErrKind::UseAfterFree)
                } else {
                    Some(MemErrKind::Bounds)
                }
            }
        }
    }
}

impl Runtime for MemcheckRuntime {
    // Every access is classified through the hook: the fast tier must
    // not elide it.
    const OBSERVES_MEMORY: bool = true;

    fn on_load(&mut self, vm: &mut Vm) {
        self.inner.on_load(vm);
    }

    fn syscall(&mut self, cpu: &mut Cpu, vm: &mut Vm) -> SyscallOutcome {
        use redfat_x86::Reg::{Rax, Rdi, Rsi};
        // Surface a fatal access error at the next runtime boundary.
        if self.mode == ErrorMode::Abort {
            if let Some(e) = self.fatal.take() {
                return SyscallOutcome::Abort(e);
            }
        }
        let nr = cpu.get(Rax);
        let size_arg = cpu.get(Rdi);
        let calloc_sz = cpu.get(Rdi).wrapping_mul(cpu.get(Rsi));
        let realloc_ptr = cpu.get(Rdi);
        let realloc_sz = cpu.get(Rsi);
        let outcome = self.inner.syscall(cpu, vm);

        // Snoop allocator traffic to maintain the shadow map.
        match nr {
            syscalls::MALLOC => {
                let ptr = cpu.get(Rax);
                if ptr != 0 {
                    self.objects.insert(ptr, ObjState::Live { size: size_arg });
                }
            }
            syscalls::CALLOC => {
                let ptr = cpu.get(Rax);
                if ptr != 0 {
                    self.objects.insert(ptr, ObjState::Live { size: calloc_sz });
                }
            }
            syscalls::REALLOC => {
                let ptr = cpu.get(Rax);
                if realloc_ptr != 0 {
                    if let Some(ObjState::Live { size }) = self.objects.get(&realloc_ptr).copied() {
                        self.objects.insert(realloc_ptr, ObjState::Freed { size });
                    }
                }
                if ptr != 0 {
                    self.objects
                        .insert(ptr, ObjState::Live { size: realloc_sz });
                }
            }
            syscalls::FREE => {
                let ptr = size_arg;
                if let Some(ObjState::Live { size }) = self.objects.get(&ptr).copied() {
                    self.objects.insert(ptr, ObjState::Freed { size });
                }
            }
            _ => {}
        }
        outcome
    }

    fn on_memory_access(
        &mut self,
        _vm: &Vm,
        addr: u64,
        len: u8,
        is_write: bool,
        rip: u64,
    ) -> Result<u64, MemoryError> {
        if let Some(kind) = self.classify(addr, len) {
            let err = MemoryError {
                site: rip,
                kind,
                is_write,
            };
            self.errors.push(err);
            if self.mode == ErrorMode::Abort && self.fatal.is_none() {
                self.fatal = Some(err);
                // Veto the access entirely in abort mode.
                return Err(err);
            }
        }
        Ok(self.check_cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redfat_elf::{ImageKind, SegFlags, Segment};
    use redfat_emu::{Emu, RunResult};
    use redfat_x86::{Asm, Mem, Reg, Width};

    fn build_image(f: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new(layout::CODE_BASE);
        f(&mut a);
        let p = a.finish().unwrap();
        Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        }
    }

    fn sys(a: &mut Asm, nr: u64) {
        a.mov_ri(Width::W64, Reg::Rax, nr as i64);
        a.syscall();
    }

    fn run(img: &Image, input: Vec<i64>) -> (RunResult, Vec<MemoryError>) {
        let rt = MemcheckRuntime::new(ErrorMode::Abort).with_input(input);
        let mut emu = Emu::load_image(img, rt).expect("loads");
        emu.cost = MemcheckRuntime::cost_model();
        let r = emu.run(1_000_000);
        (r, emu.runtime.errors.clone())
    }

    fn indexed_store(a: &mut Asm) {
        a.mov_ri(Width::W64, Reg::Rdi, 40);
        sys(a, syscalls::MALLOC);
        a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
        sys(a, syscalls::READ_INT);
        a.mov_ri(Width::W64, Reg::Rcx, 1);
        a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rax, 8, 0), Reg::Rcx);
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        sys(a, syscalls::EXIT);
    }

    #[test]
    fn clean_access_passes() {
        let img = build_image(indexed_store);
        let (r, errors) = run(&img, vec![2]);
        assert_eq!(r, RunResult::Exited(0));
        assert!(errors.is_empty());
    }

    #[test]
    fn incremental_overflow_detected() {
        let img = build_image(indexed_store);
        // Index 5: just past the 40-byte object.
        let (r, _) = run(&img, vec![5]);
        assert!(matches!(r, RunResult::MemoryError(_)), "got {r:?}");
    }

    #[test]
    fn skip_over_redzone_missed() {
        // Two adjacent objects; a store from the first into the second's
        // user data is invisible to redzone-only checking.
        let img = build_image(|a| {
            a.mov_ri(Width::W64, Reg::Rdi, 40);
            sys(a, syscalls::MALLOC);
            a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
            a.mov_ri(Width::W64, Reg::Rdi, 40);
            sys(a, syscalls::MALLOC);
            sys(a, syscalls::READ_INT);
            a.mov_ri(Width::W64, Reg::Rcx, 1);
            a.mov_mr(Width::W64, Mem::bis(Reg::Rbx, Reg::Rax, 8, 0), Reg::Rcx);
            a.mov_ri(Width::W64, Reg::Rdi, 0);
            sys(a, syscalls::EXIT);
        });
        // idx 10: 16 + 80 = 96 past the first base → inside the second
        // object's user data (objects 64 bytes apart, user at +80).
        let (r, errors) = run(&img, vec![10]);
        assert_eq!(r, RunResult::Exited(0), "Memcheck misses the skip");
        assert!(errors.is_empty());
    }

    #[test]
    fn use_after_free_detected() {
        let img = build_image(|a| {
            a.mov_ri(Width::W64, Reg::Rdi, 40);
            sys(a, syscalls::MALLOC);
            a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
            a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
            sys(a, syscalls::FREE);
            a.mov_rm(Width::W64, Reg::Rcx, Mem::base(Reg::Rbx));
            a.mov_ri(Width::W64, Reg::Rdi, 0);
            sys(a, syscalls::EXIT);
        });
        let (r, errors) = run(&img, vec![]);
        let err = match r {
            RunResult::MemoryError(e) => e,
            other => panic!("expected UAF, got {other:?} ({errors:?})"),
        };
        assert_eq!(err.kind, MemErrKind::UseAfterFree);
    }

    #[test]
    fn dbi_overhead_is_charged() {
        let img = build_image(|a| {
            a.mov_ri(Width::W64, Reg::Rdi, 0);
            sys(a, syscalls::EXIT);
        });
        // Native run.
        let mut native = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        let _ = native.run(1000);
        // Memcheck run.
        let mut mc = Emu::load_image(&img, MemcheckRuntime::new(ErrorMode::Abort)).expect("loads");
        mc.cost = MemcheckRuntime::cost_model();
        let _ = mc.run(1000);
        assert!(mc.counters.cycles > native.counters.cycles);
    }

    #[test]
    fn leak_check_reports_live_objects() {
        let img = build_image(|a| {
            // Two allocations; only the first is freed.
            a.mov_ri(Width::W64, Reg::Rdi, 24);
            sys(a, syscalls::MALLOC);
            a.mov_rr(Width::W64, Reg::Rbx, Reg::Rax);
            a.mov_ri(Width::W64, Reg::Rdi, 48);
            sys(a, syscalls::MALLOC);
            a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
            sys(a, syscalls::FREE);
            a.mov_ri(Width::W64, Reg::Rdi, 0);
            sys(a, syscalls::EXIT);
        });
        let rt = MemcheckRuntime::new(ErrorMode::Abort);
        let mut emu = Emu::load_image(&img, rt).expect("loads");
        assert_eq!(emu.run(10_000), RunResult::Exited(0));
        let leaks = emu.runtime.leaked();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].1, 48, "the 48-byte object leaked");
    }

    #[test]
    fn limits_model_nr_rows() {
        let limits = MemcheckLimits::default();
        let small = build_image(|a| a.ret());
        assert!(limits.check(&small, false).is_ok());
        assert_eq!(limits.check(&small, true), Err(NotRunnable::RequiresX87));
        let mut big = small.clone();
        big.segments.push(Segment {
            vaddr: layout::GLOBALS_BASE,
            flags: SegFlags::RW,
            data: vec![],
            mem_size: 64 << 20,
        });
        assert!(matches!(
            limits.check(&big, false),
            Err(NotRunnable::DataSegmentTooLarge(_))
        ));
    }
}
