//! The interpreter: fetch/decode (cached) and execute.

use crate::cost::{CostModel, Counters};
use crate::cpu::Cpu;
use crate::runtime::{MemoryError, Runtime, SyscallOutcome};
use redfat_vm::{layout, Vm, VmFault};
use redfat_x86::{
    decode_one, AluOp, DecodeError, Inst, Mem, MulDivOp, Op, Operands, Reg, ShiftOp, Width,
};
use std::collections::HashMap;

/// Magic first quadword of the rewriter's `int3` trap-table segment.
pub const TRAP_TABLE_MAGIC: u64 = 0x5041_5254_4642_5244; // "DRBFTRAP"-ish tag

/// A host-visible execution failure (guest bug or unsupported code).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// Memory fault.
    Fault { rip: u64, fault: VmFault },
    /// Undecodable instruction bytes.
    Decode { rip: u64, err: DecodeError },
    /// Division by zero or quotient overflow.
    DivideError { rip: u64 },
    /// `ud2` executed.
    Ud2 { rip: u64 },
    /// `int3` executed with no trap-table entry.
    UnhandledInt3 { rip: u64 },
    /// A runtime access hook vetoed the access (DBI-style tools in
    /// abort mode).
    AccessVetoed { rip: u64, error: MemoryError },
}

impl std::fmt::Display for EmuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmuError::Fault { rip, fault } => write!(f, "at {rip:#x}: {fault}"),
            EmuError::Decode { rip, err } => write!(f, "at {rip:#x}: {err}"),
            EmuError::DivideError { rip } => write!(f, "at {rip:#x}: divide error"),
            EmuError::Ud2 { rip } => write!(f, "at {rip:#x}: ud2"),
            EmuError::UnhandledInt3 { rip } => write!(f, "at {rip:#x}: stray int3"),
            EmuError::AccessVetoed { rip, error } => {
                write!(f, "at {rip:#x}: access vetoed: {error}")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunResult {
    /// Guest called `exit`.
    Exited(i64),
    /// Instrumentation detected a memory error and the runtime aborted.
    MemoryError(MemoryError),
    /// The guest did something the emulator cannot continue from.
    Error(EmuError),
    /// The step budget was exhausted.
    StepLimit,
}

impl RunResult {
    /// Returns the exit code, panicking otherwise (test convenience).
    ///
    /// # Panics
    ///
    /// Panics if the run did not exit normally.
    pub fn expect_exit(&self) -> i64 {
        match self {
            RunResult::Exited(c) => *c,
            other => panic!("expected clean exit, got {other:?}"),
        }
    }
}

/// Per-segment instruction cache: one `u32` slot per code byte indexing
/// into a pool of decoded instructions (`u32::MAX` = not yet decoded).
/// Guest stores never invalidate entries (self-modifying code is
/// unsupported by the substrate); the host can explicitly drop a
/// segment's decodes via [`Emu::invalidate_code`] after reloading code.
#[derive(Default)]
struct ICache {
    segs: Vec<(u64, u64, Vec<u32>)>, // (base, end, slots)
    pool: Vec<(Inst, u8)>,
    last: usize,
}

impl ICache {
    #[inline]
    fn lookup(&mut self, rip: u64) -> Option<(Inst, u8)> {
        let seg = self.seg_of(rip)?;
        let (base, _, slots) = &self.segs[seg];
        let idx = slots[(rip - base) as usize];
        if idx == u32::MAX {
            None
        } else {
            Some(self.pool[idx as usize])
        }
    }

    #[inline]
    fn seg_of(&mut self, rip: u64) -> Option<usize> {
        if let Some(&(b, e, _)) = self.segs.get(self.last) {
            if rip >= b && rip < e {
                return Some(self.last);
            }
        }
        for (i, &(b, e, _)) in self.segs.iter().enumerate() {
            if rip >= b && rip < e {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    fn add_seg(&mut self, base: u64, size: u64) {
        self.segs
            .push((base, base + size, vec![u32::MAX; size as usize]));
        self.last = self.segs.len() - 1;
    }

    fn insert(&mut self, rip: u64, entry: (Inst, u8)) {
        if let Some(seg) = self.seg_of(rip) {
            let idx = self.pool.len() as u32;
            self.pool.push(entry);
            let (base, _, slots) = &mut self.segs[seg];
            let off = (rip - *base) as usize;
            slots[off] = idx;
        }
    }

    /// Drops every cached decode in the segment containing `addr`.
    /// Returns `false` when no tracked segment contains it. The pool
    /// keeps the stale entries (bounded garbage, same policy as the
    /// superblock cache); only the slot mapping is reset.
    fn invalidate(&mut self, addr: u64) -> bool {
        match self.seg_of(addr) {
            Some(seg) => {
                self.segs[seg].2.fill(u32::MAX);
                true
            }
            None => false,
        }
    }
}

/// The emulator: CPU + address space + runtime + cost accounting.
pub struct Emu<R: Runtime> {
    /// Guest CPU state.
    pub cpu: Cpu,
    /// Guest address space.
    pub vm: Vm,
    /// The runtime servicing syscalls and access hooks.
    pub runtime: R,
    /// Cost model in effect.
    pub cost: CostModel,
    /// Accumulated counters.
    pub counters: Counters,
    icache: ICache,
    pub(crate) trace: crate::trace::TraceCache,
    trap_table: HashMap<u64, u64>,
    /// Dead-flag elision switch: when set, the flag helpers skip writing
    /// `cpu.flags`. Only the trace-linked backend sets it, and only
    /// around instructions whose flag outputs
    /// [`redfat_analysis::dead_flags_in_run`] proved unobservable.
    pub(crate) noflags: bool,
}

impl<R: Runtime> Emu<R> {
    /// Creates an emulator over an already-populated [`Vm`].
    ///
    /// Most callers use [`Emu::load_image`] instead.
    pub fn new(vm: Vm, runtime: R) -> Emu<R> {
        Emu {
            cpu: Cpu::default(),
            vm,
            runtime,
            cost: CostModel::default(),
            counters: Counters::default(),
            icache: ICache::default(),
            trace: crate::trace::TraceCache::default(),
            trap_table: HashMap::new(),
            noflags: false,
        }
    }

    /// See [`ICache::invalidate`]; the public entry point is
    /// [`Emu::invalidate_code`], which also drops the block cache.
    pub(crate) fn icache_invalidate(&mut self, addr: u64) -> bool {
        self.icache.invalidate(addr)
    }

    /// Registers an `int3` trap-table entry (normally discovered by the
    /// loader from the rewritten binary).
    pub fn add_trap(&mut self, addr: u64, target: u64) {
        self.trap_table.insert(addr, target);
    }

    /// Runs until exit, error or `max_steps` instructions.
    pub fn run(&mut self, max_steps: u64) -> RunResult {
        for _ in 0..max_steps {
            match self.step() {
                Ok(None) => {}
                Ok(Some(result)) => return result,
                Err(EmuError::AccessVetoed { error, .. }) => return RunResult::MemoryError(error),
                Err(e) => return RunResult::Error(e),
            }
        }
        RunResult::StepLimit
    }

    /// Effective address of a memory operand.
    #[inline]
    pub(crate) fn ea(&self, m: &Mem) -> u64 {
        if m.rip {
            // The decoder resolves RIP-relative displacements to absolute.
            return m.disp as u64;
        }
        let mut a = m.disp as u64;
        if let Some(b) = m.base {
            a = a.wrapping_add(self.cpu.get(b));
        }
        if let Some(i) = m.index {
            a = a.wrapping_add(self.cpu.get(i).wrapping_mul(m.scale as u64));
        }
        a
    }

    #[inline]
    pub(crate) fn load(&mut self, m: &Mem, w: Width) -> Result<u64, EmuError> {
        let addr = self.ea(m);
        self.load_at(addr, w)
    }

    #[inline]
    fn load_at(&mut self, addr: u64, w: Width) -> Result<u64, EmuError> {
        let rip = self.cpu.rip;
        self.load_at_rip(addr, w, rip)
    }

    /// [`Emu::load_at`] with the fault-reporting `rip` passed explicitly,
    /// so callers that have not stored the architectural `rip` (the
    /// trace tier's fast paths) still report faults at the exact address
    /// `step()` would.
    #[inline]
    pub(crate) fn load_at_rip(&mut self, addr: u64, w: Width, rip: u64) -> Result<u64, EmuError> {
        let extra = self
            .runtime
            .on_memory_access(&self.vm, addr, w.bytes(), false, rip)
            .map_err(|error| EmuError::AccessVetoed { rip, error })?;
        self.counters.cycles += extra + self.cost.mem;
        self.counters.loads += 1;
        let wrap = |fault| EmuError::Fault { rip, fault };
        Ok(match w {
            Width::W8 => self.vm.read_u8(addr).map_err(wrap)? as u64,
            Width::W32 => self.vm.read_u32(addr).map_err(wrap)? as u64,
            Width::W64 => self.vm.read_u64(addr).map_err(wrap)?,
        })
    }

    #[inline]
    pub(crate) fn store(&mut self, m: &Mem, w: Width, v: u64) -> Result<(), EmuError> {
        let addr = self.ea(m);
        self.store_at(addr, w, v)
    }

    #[inline]
    fn store_at(&mut self, addr: u64, w: Width, v: u64) -> Result<(), EmuError> {
        let rip = self.cpu.rip;
        self.store_at_rip(addr, w, v, rip)
    }

    /// [`Emu::store_at`] with an explicit fault-reporting `rip`; see
    /// [`Emu::load_at_rip`].
    #[inline]
    pub(crate) fn store_at_rip(
        &mut self,
        addr: u64,
        w: Width,
        v: u64,
        rip: u64,
    ) -> Result<(), EmuError> {
        let extra = self
            .runtime
            .on_memory_access(&self.vm, addr, w.bytes(), true, rip)
            .map_err(|error| EmuError::AccessVetoed { rip, error })?;
        self.counters.cycles += extra + self.cost.mem;
        self.counters.stores += 1;
        let wrap = |fault| EmuError::Fault { rip, fault };
        match w {
            Width::W8 => self.vm.write_u8(addr, v as u8).map_err(wrap),
            Width::W32 => self.vm.write_u32(addr, v as u32).map_err(wrap),
            Width::W64 => self.vm.write_u64(addr, v).map_err(wrap),
        }
    }

    pub(crate) fn push64(&mut self, v: u64) -> Result<(), EmuError> {
        let rsp = self.cpu.get(Reg::Rsp).wrapping_sub(8);
        self.cpu.set(Reg::Rsp, rsp);
        self.store_at(rsp, Width::W64, v)
    }

    fn pop64(&mut self) -> Result<u64, EmuError> {
        let rsp = self.cpu.get(Reg::Rsp);
        let v = self.load_at(rsp, Width::W64)?;
        self.cpu.set(Reg::Rsp, rsp.wrapping_add(8));
        Ok(v)
    }

    /// Charges the cost of a control transfer and tracks trampoline
    /// region crossings.
    fn transfer_to(&mut self, target: u64) {
        self.counters.transfers += 1;
        self.counters.cycles += self.cost.transfer;
        if in_tramp(self.cpu.rip) != in_tramp(target) {
            self.counters.region_crossings += 1;
            self.counters.cycles += self.cost.cross_region;
        }
        self.cpu.rip = target;
    }

    /// Executes one instruction. Returns `Some(result)` on termination.
    pub fn step(&mut self) -> Result<Option<RunResult>, EmuError> {
        let rip = self.cpu.rip;
        let (inst, len) = match self.icache.lookup(rip) {
            Some(hit) => hit,
            None => {
                let bytes = self
                    .vm
                    .fetch(rip, 16)
                    .map_err(|fault| EmuError::Fault { rip, fault })?;
                let decoded =
                    decode_one(bytes, rip).map_err(|err| EmuError::Decode { rip, err })?;
                if self.icache.seg_of(rip).is_none() {
                    if let Some((base, size)) = self.vm.segment_span(rip) {
                        self.icache.add_seg(base, size);
                    }
                }
                self.icache.insert(rip, decoded);
                decoded
            }
        };

        self.counters.instructions += 1;
        self.counters.cycles += self.cost.base + self.cost.dbi_dispatch;
        let next = rip + len as u64;
        self.cpu.rip = next; // default fall-through; transfers override

        self.exec(&inst, rip, next)
    }

    #[inline]
    pub(crate) fn exec(
        &mut self,
        inst: &Inst,
        rip: u64,
        next: u64,
    ) -> Result<Option<RunResult>, EmuError> {
        use Operands as O;
        let w = inst.w;
        match (inst.op, &inst.operands) {
            // ---- mov family ----
            (Op::Mov, O::RR { dst, src }) => {
                let v = self.cpu.read(*src, w);
                self.cpu.write(*dst, w, v);
            }
            (Op::Mov, O::RM { dst, src }) => {
                let v = self.load(src, w)?;
                self.cpu.write(*dst, w, v);
            }
            (Op::Mov, O::MR { dst, src }) => {
                let v = self.cpu.read(*src, w);
                self.store(dst, w, v)?;
            }
            (Op::Mov, O::RI { dst, imm }) => self.cpu.write(*dst, w, *imm as u64),
            (Op::Mov, O::MI { dst, imm }) => self.store(dst, w, *imm as u64)?,
            (Op::Movzx8, O::RR { dst, src }) => {
                let v = self.cpu.read(*src, Width::W8);
                self.cpu.write(*dst, Width::W64, v);
            }
            (Op::Movzx8, O::RM { dst, src }) => {
                let v = self.load(src, Width::W8)?;
                self.cpu.write(*dst, Width::W64, v);
            }
            (Op::Movsx8, O::RR { dst, src }) => {
                let v = self.cpu.read(*src, Width::W8) as u8 as i8 as i64 as u64;
                self.cpu.write(*dst, Width::W64, v);
            }
            (Op::Movsx8, O::RM { dst, src }) => {
                let v = self.load(src, Width::W8)? as u8 as i8 as i64 as u64;
                self.cpu.write(*dst, Width::W64, v);
            }
            (Op::Movsxd, O::RR { dst, src }) => {
                let v = self.cpu.read(*src, Width::W32) as u32 as i32 as i64 as u64;
                self.cpu.write(*dst, Width::W64, v);
            }
            (Op::Movsxd, O::RM { dst, src }) => {
                let v = self.load(src, Width::W32)? as u32 as i32 as i64 as u64;
                self.cpu.write(*dst, Width::W64, v);
            }
            (Op::Lea, O::RM { dst, src }) => {
                let a = self.ea(src);
                self.cpu.write(*dst, w, a);
            }

            // ---- ALU ----
            (Op::Alu(op), O::RR { dst, src }) => {
                let a = self.cpu.read(*dst, w);
                let b = self.cpu.read(*src, w);
                let r = self.alu(op, w, a, b);
                if op != AluOp::Cmp {
                    self.cpu.write(*dst, w, r);
                }
            }
            (Op::Alu(op), O::RM { dst, src }) => {
                let a = self.cpu.read(*dst, w);
                let b = self.load(src, w)?;
                let r = self.alu(op, w, a, b);
                if op != AluOp::Cmp {
                    self.cpu.write(*dst, w, r);
                }
            }
            (Op::Alu(op), O::MR { dst, src }) => {
                let m = *dst;
                let a = self.load(&m, w)?;
                let b = self.cpu.read(*src, w);
                let r = self.alu(op, w, a, b);
                if op != AluOp::Cmp {
                    self.store(&m, w, r)?;
                }
            }
            (Op::Alu(op), O::RI { dst, imm }) => {
                let a = self.cpu.read(*dst, w);
                let b = mask(*imm as u64, w);
                let r = self.alu(op, w, a, b);
                if op != AluOp::Cmp {
                    self.cpu.write(*dst, w, r);
                }
            }
            (Op::Alu(op), O::MI { dst, imm }) => {
                let m = *dst;
                let a = self.load(&m, w)?;
                let b = mask(*imm as u64, w);
                let r = self.alu(op, w, a, b);
                if op != AluOp::Cmp {
                    self.store(&m, w, r)?;
                }
            }
            (Op::Test, O::RR { dst, src }) => {
                let a = self.cpu.read(*dst, w);
                let b = self.cpu.read(*src, w);
                self.logic_flags(w, a & b);
            }
            (Op::Test, O::RI { dst, imm }) => {
                let a = self.cpu.read(*dst, w);
                self.logic_flags(w, a & mask(*imm as u64, w));
            }

            // ---- shifts ----
            (Op::Shift(op), O::RI { dst, imm }) => {
                let a = self.cpu.read(*dst, w);
                let r = self.shift(op, w, a, *imm as u32);
                self.cpu.write(*dst, w, r);
            }
            (Op::Shift(op), O::MI { dst, imm }) => {
                let m = *dst;
                let a = self.load(&m, w)?;
                let r = self.shift(op, w, a, *imm as u32);
                self.store(&m, w, r)?;
            }
            (Op::ShiftCl(op), O::R(r)) => {
                let c = (self.cpu.get(Reg::Rcx) & 0xFF) as u32;
                let a = self.cpu.read(*r, w);
                let v = self.shift(op, w, a, c);
                self.cpu.write(*r, w, v);
            }
            (Op::ShiftCl(op), O::M(m)) => {
                let mm = *m;
                let c = (self.cpu.get(Reg::Rcx) & 0xFF) as u32;
                let a = self.load(&mm, w)?;
                let v = self.shift(op, w, a, c);
                self.store(&mm, w, v)?;
            }

            // ---- multiply / divide ----
            (Op::Imul2, O::RR { dst, src }) => {
                let a = self.cpu.read(*dst, w);
                let b = self.cpu.read(*src, w);
                let r = self.imul_flags(w, a, b);
                self.cpu.write(*dst, w, r);
                self.counters.cycles += self.cost.mul;
            }
            (Op::Imul2, O::RM { dst, src }) => {
                let a = self.cpu.read(*dst, w);
                let b = self.load(src, w)?;
                let r = self.imul_flags(w, a, b);
                self.cpu.write(*dst, w, r);
                self.counters.cycles += self.cost.mul;
            }
            (Op::Imul3, O::RRI { dst, src, imm }) => {
                let b = self.cpu.read(*src, w);
                let r = self.imul_flags(w, b, mask(*imm as u64, w));
                self.cpu.write(*dst, w, r);
                self.counters.cycles += self.cost.mul;
            }
            (Op::Imul3, O::RMI { dst, src, imm }) => {
                let b = self.load(src, w)?;
                let r = self.imul_flags(w, b, mask(*imm as u64, w));
                self.cpu.write(*dst, w, r);
                self.counters.cycles += self.cost.mul;
            }
            (Op::MulDiv(op), operands) => {
                let src = match operands {
                    O::R(r) => self.cpu.read(*r, w),
                    O::M(m) => self.load(m, w)?,
                    _ => unreachable!("encoder forbids"),
                };
                self.muldiv(op, w, src, rip)?;
            }
            (Op::Neg, O::R(r)) => {
                let a = self.cpu.read(*r, w);
                let v = self.alu(AluOp::Sub, w, 0, a);
                self.cpu.write(*r, w, v);
                if !self.noflags {
                    self.cpu.flags.cf = a != 0;
                }
            }
            (Op::Neg, O::M(m)) => {
                let mm = *m;
                let a = self.load(&mm, w)?;
                let v = self.alu(AluOp::Sub, w, 0, a);
                self.store(&mm, w, v)?;
                self.cpu.flags.cf = a != 0;
            }
            (Op::Not, O::R(r)) => {
                let a = self.cpu.read(*r, w);
                self.cpu.write(*r, w, !a);
            }
            (Op::Not, O::M(m)) => {
                let mm = *m;
                let a = self.load(&mm, w)?;
                self.store(&mm, w, !a)?;
            }
            (Op::Cqo, O::None) => {
                if w == Width::W64 {
                    let v = ((self.cpu.get(Reg::Rax) as i64) >> 63) as u64;
                    self.cpu.set(Reg::Rdx, v);
                } else {
                    let v = ((self.cpu.read(Reg::Rax, Width::W32) as i32) >> 31) as u32;
                    self.cpu.write(Reg::Rdx, Width::W32, v as u64);
                }
            }

            // ---- stack ----
            (Op::Push, O::R(r)) => {
                let v = self.cpu.get(*r);
                self.push64(v)?;
            }
            (Op::Push, O::M(m)) => {
                let v = self.load(m, Width::W64)?;
                self.push64(v)?;
            }
            (Op::Pop, O::R(r)) => {
                let v = self.pop64()?;
                self.cpu.set(*r, v);
            }
            (Op::Pop, O::M(m)) => {
                let v = self.pop64()?;
                self.store(m, Width::W64, v)?;
            }
            (Op::Pushfq, O::None) => {
                let v = self.cpu.flags.to_rflags();
                self.push64(v)?;
            }
            (Op::Popfq, O::None) => {
                let v = self.pop64()?;
                self.cpu.flags = crate::cpu::Flags::from_rflags(v);
            }

            // ---- control flow ----
            (Op::Call, O::Rel(t)) => {
                self.push64(next)?;
                self.transfer_to(*t);
            }
            (Op::CallInd, ops) => {
                let t = match ops {
                    O::R(r) => self.cpu.get(*r),
                    O::M(m) => self.load(m, Width::W64)?,
                    _ => unreachable!("encoder forbids"),
                };
                self.push64(next)?;
                self.transfer_to(t);
            }
            (Op::Ret, O::None) => {
                let t = self.pop64()?;
                self.transfer_to(t);
            }
            (Op::Jmp, O::Rel(t)) => self.transfer_to(*t),
            (Op::JmpInd, ops) => {
                let t = match ops {
                    O::R(r) => self.cpu.get(*r),
                    O::M(m) => self.load(m, Width::W64)?,
                    _ => unreachable!("encoder forbids"),
                };
                self.transfer_to(t);
            }
            (Op::Jcc(c), O::Rel(t)) => {
                if self.cpu.flags.cond(c) {
                    self.counters.taken_branches += 1;
                    self.counters.cycles += self.cost.branch_taken;
                    // Track trampoline crossings on conditional jumps too.
                    let saved = self.counters.transfers;
                    self.transfer_to(*t);
                    self.counters.transfers = saved; // not an uncond transfer
                    self.counters.cycles -= self.cost.transfer;
                }
            }
            (Op::Setcc(c), O::R(r)) => {
                let v = self.cpu.flags.cond(c) as u64;
                self.cpu.write(*r, Width::W8, v);
            }
            (Op::Setcc(c), O::M(m)) => {
                let v = self.cpu.flags.cond(c) as u64;
                self.store(m, Width::W8, v)?;
            }
            (Op::Cmovcc(c), O::RR { dst, src }) => {
                if self.cpu.flags.cond(c) {
                    let v = self.cpu.read(*src, w);
                    self.cpu.write(*dst, w, v);
                } else if w == Width::W32 {
                    // cmov always writes the destination at 32-bit width
                    // (zero-extending) even when the move is suppressed.
                    let v = self.cpu.read(*dst, Width::W32);
                    self.cpu.write(*dst, Width::W32, v);
                }
            }
            (Op::Cmovcc(c), O::RM { dst, src }) => {
                // The load happens regardless of the condition on real
                // hardware; preserve that for fault behavior.
                let v = self.load(src, w)?;
                if self.cpu.flags.cond(c) {
                    self.cpu.write(*dst, w, v);
                }
            }

            // ---- system ----
            (Op::Syscall, O::None) => {
                self.counters.syscalls += 1;
                self.counters.cycles += self.cost.syscall;
                match self.runtime.syscall(&mut self.cpu, &mut self.vm) {
                    SyscallOutcome::Continue => {}
                    SyscallOutcome::Exit(code) => return Ok(Some(RunResult::Exited(code))),
                    SyscallOutcome::Abort(err) => return Ok(Some(RunResult::MemoryError(err))),
                }
            }
            (Op::Ud2, O::None) => return Err(EmuError::Ud2 { rip }),
            (Op::Int3, O::None) => match self.trap_table.get(&rip) {
                Some(&target) => {
                    self.counters.int3_traps += 1;
                    self.counters.cycles += self.cost.int3_trap;
                    self.transfer_to(target);
                }
                None => return Err(EmuError::UnhandledInt3 { rip }),
            },
            (Op::Nop, O::None) => {}

            _ => {
                return Err(EmuError::Decode {
                    rip,
                    err: DecodeError::UnsupportedOpcode(0),
                })
            }
        }
        Ok(None)
    }

    // ---- flag helpers ----

    pub(crate) fn alu(&mut self, op: AluOp, w: Width, a: u64, b: u64) -> u64 {
        if self.noflags {
            return alu_value(op, w, a, b);
        }
        let m = width_mask(w);
        let sign = sign_bit(w);
        match op {
            AluOp::Add => {
                let r = a.wrapping_add(b) & m;
                self.cpu.flags.cf = r < a;
                self.cpu.flags.of = ((a ^ r) & (b ^ r) & sign) != 0;
                self.result_flags(w, r);
                r
            }
            AluOp::Sub | AluOp::Cmp => {
                let r = a.wrapping_sub(b) & m;
                self.cpu.flags.cf = a < b;
                self.cpu.flags.of = ((a ^ b) & (a ^ r) & sign) != 0;
                self.result_flags(w, r);
                r
            }
            AluOp::And => {
                let r = a & b;
                self.logic_flags(w, r);
                r
            }
            AluOp::Or => {
                let r = a | b;
                self.logic_flags(w, r);
                r
            }
            AluOp::Xor => {
                let r = a ^ b;
                self.logic_flags(w, r);
                r
            }
        }
    }

    pub(crate) fn logic_flags(&mut self, w: Width, r: u64) {
        if self.noflags {
            return;
        }
        self.cpu.flags.cf = false;
        self.cpu.flags.of = false;
        self.result_flags(w, r);
    }

    fn result_flags(&mut self, w: Width, r: u64) {
        if self.noflags {
            return;
        }
        let r = r & width_mask(w);
        self.cpu.flags.zf = r == 0;
        self.cpu.flags.sf = r & sign_bit(w) != 0;
        self.cpu.flags.pf = (r as u8).count_ones().is_multiple_of(2);
    }

    pub(crate) fn shift(&mut self, op: ShiftOp, w: Width, a: u64, count: u32) -> u64 {
        if self.noflags {
            return shift_value(op, w, a, count);
        }
        let bits = w.bits();
        let c = count & if w == Width::W64 { 63 } else { 31 };
        if c == 0 {
            return a & width_mask(w);
        }
        let m = width_mask(w);
        let r = match op {
            ShiftOp::Shl => {
                self.cpu.flags.cf = c <= bits && (a >> (bits - c)) & 1 != 0;
                (a << c) & m
            }
            ShiftOp::Shr => {
                self.cpu.flags.cf = (a >> (c - 1)) & 1 != 0;
                (a & m) >> c
            }
            ShiftOp::Sar => {
                self.cpu.flags.cf = (a >> (c - 1)) & 1 != 0;
                let signed = sign_extend(a, w);
                ((signed >> c.min(63)) as u64) & m
            }
        };
        self.result_flags(w, r);
        // OF definition matters only for c == 1; approximate the
        // architectural value.
        self.cpu.flags.of = match op {
            ShiftOp::Shl => ((r & sign_bit(w)) != 0) != self.cpu.flags.cf,
            ShiftOp::Shr => a & sign_bit(w) != 0,
            ShiftOp::Sar => false,
        };
        r
    }

    pub(crate) fn imul_flags(&mut self, w: Width, a: u64, b: u64) -> u64 {
        let sa = sign_extend(a, w) as i128;
        let sb = sign_extend(b, w) as i128;
        let full = sa * sb;
        let r = (full as u64) & width_mask(w);
        if self.noflags {
            return r;
        }
        let fits = sign_extend(r, w) as i128 == full;
        self.cpu.flags.cf = !fits;
        self.cpu.flags.of = !fits;
        self.result_flags(w, r);
        r
    }

    // Real hardware leaves most flags *undefined* after mul/div. This
    // substrate must pick concrete values, and they must constitute a
    // full rewrite: `Inst::writes_flags` reports mul/div as flag
    // writers, so the liveness analysis lets instrumentation trash the
    // flags right before one. Partially preserving them here would leak
    // that trash through -- result_flags() pins every bit.
    pub(crate) fn muldiv(
        &mut self,
        op: MulDivOp,
        w: Width,
        src: u64,
        rip: u64,
    ) -> Result<(), EmuError> {
        match op {
            MulDivOp::Mul => {
                self.counters.cycles += self.cost.mul;
                match w {
                    Width::W64 => {
                        let full = self.cpu.get(Reg::Rax) as u128 * src as u128;
                        self.cpu.set(Reg::Rax, full as u64);
                        self.cpu.set(Reg::Rdx, (full >> 64) as u64);
                        let hi = (full >> 64) as u64;
                        self.result_flags(w, full as u64);
                        self.cpu.flags.cf = hi != 0;
                        self.cpu.flags.of = hi != 0;
                    }
                    _ => {
                        let full = self.cpu.read(Reg::Rax, Width::W32) * (src & 0xFFFF_FFFF);
                        self.cpu.write(Reg::Rax, Width::W32, full & 0xFFFF_FFFF);
                        self.cpu.write(Reg::Rdx, Width::W32, full >> 32);
                        self.result_flags(w, full & 0xFFFF_FFFF);
                        self.cpu.flags.cf = full >> 32 != 0;
                        self.cpu.flags.of = full >> 32 != 0;
                    }
                }
            }
            MulDivOp::Div => {
                self.counters.cycles += self.cost.div;
                if src == 0 {
                    return Err(EmuError::DivideError { rip });
                }
                match w {
                    Width::W64 => {
                        let dividend = ((self.cpu.get(Reg::Rdx) as u128) << 64)
                            | self.cpu.get(Reg::Rax) as u128;
                        let q = dividend / src as u128;
                        if q > u64::MAX as u128 {
                            return Err(EmuError::DivideError { rip });
                        }
                        self.cpu.set(Reg::Rax, q as u64);
                        self.cpu.set(Reg::Rdx, (dividend % src as u128) as u64);
                        self.logic_flags(w, q as u64);
                    }
                    _ => {
                        let dividend = (self.cpu.read(Reg::Rdx, Width::W32) << 32)
                            | self.cpu.read(Reg::Rax, Width::W32);
                        let d = src & 0xFFFF_FFFF;
                        let q = dividend / d;
                        if q > u32::MAX as u64 {
                            return Err(EmuError::DivideError { rip });
                        }
                        self.cpu.write(Reg::Rax, Width::W32, q);
                        self.cpu.write(Reg::Rdx, Width::W32, dividend % d);
                        self.logic_flags(w, q);
                    }
                }
            }
            MulDivOp::Idiv => {
                self.counters.cycles += self.cost.div;
                if src == 0 {
                    return Err(EmuError::DivideError { rip });
                }
                match w {
                    Width::W64 => {
                        let dividend = (((self.cpu.get(Reg::Rdx) as u128) << 64)
                            | self.cpu.get(Reg::Rax) as u128)
                            as i128;
                        let divisor = src as i64 as i128;
                        let q = dividend.wrapping_div(divisor);
                        if q > i64::MAX as i128 || q < i64::MIN as i128 {
                            return Err(EmuError::DivideError { rip });
                        }
                        self.cpu.set(Reg::Rax, q as u64);
                        self.cpu
                            .set(Reg::Rdx, dividend.wrapping_rem(divisor) as u64);
                        self.logic_flags(w, q as u64);
                    }
                    _ => {
                        let dividend = ((self.cpu.read(Reg::Rdx, Width::W32) << 32
                            | self.cpu.read(Reg::Rax, Width::W32))
                            as i64) as i128;
                        let divisor = src as u32 as i32 as i128;
                        let q = dividend.wrapping_div(divisor);
                        if q > i32::MAX as i128 || q < i32::MIN as i128 {
                            return Err(EmuError::DivideError { rip });
                        }
                        self.cpu.write(Reg::Rax, Width::W32, q as u64);
                        self.cpu
                            .write(Reg::Rdx, Width::W32, dividend.wrapping_rem(divisor) as u64);
                        self.logic_flags(w, q as u64);
                    }
                }
            }
        }
        Ok(())
    }
}

/// `true` when `a` lies in the trampoline region (used for the
/// region-crossing cost; shared with the trace-linked backend's inline
/// exit handling).
#[inline]
pub(crate) fn in_tramp(a: u64) -> bool {
    (layout::TRAMPOLINE_BASE..layout::STACK_TOP).contains(&a)
}

/// The pure value an ALU operation computes, without flag effects. The
/// trace-linked backend's specialized entries use this for operations
/// whose flags were proven dead ([`Emu::alu`] stays the single source of
/// truth for flag semantics).
#[inline]
pub(crate) fn alu_value(op: AluOp, w: Width, a: u64, b: u64) -> u64 {
    let m = width_mask(w);
    match op {
        AluOp::Add => a.wrapping_add(b) & m,
        AluOp::Sub | AluOp::Cmp => a.wrapping_sub(b) & m,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
    }
}

/// The pure value a constant-count shift computes (count already known
/// nonzero after masking), without flag effects.
#[inline]
pub(crate) fn shift_value(op: ShiftOp, w: Width, a: u64, count: u32) -> u64 {
    let c = count & if w == Width::W64 { 63 } else { 31 };
    let m = width_mask(w);
    if c == 0 {
        return a & m;
    }
    match op {
        ShiftOp::Shl => (a << c) & m,
        ShiftOp::Shr => (a & m) >> c,
        ShiftOp::Sar => ((sign_extend(a, w) >> c.min(63)) as u64) & m,
    }
}

#[inline]
pub(crate) fn width_mask(w: Width) -> u64 {
    match w {
        Width::W8 => 0xFF,
        Width::W32 => 0xFFFF_FFFF,
        Width::W64 => u64::MAX,
    }
}

#[inline]
fn sign_bit(w: Width) -> u64 {
    match w {
        Width::W8 => 0x80,
        Width::W32 => 0x8000_0000,
        Width::W64 => 0x8000_0000_0000_0000,
    }
}

#[inline]
fn sign_extend(v: u64, w: Width) -> i64 {
    match w {
        Width::W8 => v as u8 as i8 as i64,
        Width::W32 => v as u32 as i32 as i64,
        Width::W64 => v as i64,
    }
}

#[inline]
fn mask(v: u64, w: Width) -> u64 {
    v & width_mask(w)
}
