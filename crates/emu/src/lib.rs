//! An x86-64 subset emulator over the simulated address space.
//!
//! This is the reproduction's "CPU": it executes the machine code produced
//! by the assembler / mini-C compiler -- original or rewritten -- against
//! a [`redfat_vm::Vm`], with:
//!
//! * faithful flags semantics for the modeled instruction subset;
//! * a `syscall` trap into a pluggable [`Runtime`] (the `malloc`/`free`/
//!   IO/profiling interface; swapping runtimes is the reproduction's
//!   `LD_PRELOAD` analogue);
//! * a transparent **cost model** ([`CostModel`]) whose cycle counter is
//!   the performance metric of the experiments: slowdowns in the Table 1
//!   reproduction are ratios of modeled cycles, so the overhead of
//!   instrumentation *emerges* from the extra instructions the rewriter
//!   inserted rather than being assumed;
//! * support for the rewriter's `int3` fallback patch tactic via an
//!   in-binary trap table (see [`TRAP_TABLE_MAGIC`]);
//! * a per-access hook on [`Runtime`] so that DBI-style tools (the
//!   Memcheck baseline) can interpose on every load/store exactly as
//!   dynamic binary instrumentation would.
//!
//! Self-modifying guest code is unsupported (instructions are decode-
//! cached), mirroring E9Patch's documented limitation (paper §7.4).
// Emulator failures must be structured (`EmuError`, `LoadError`,
// `RunResult`), never panics: the emulator runs attacker-influenced
// guest images inside a long-running daemon.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod cost;
mod cpu;
mod exec;
mod loader;
mod runtime;
mod trace;

pub use cost::{CostModel, Counters, TraceStats};
pub use cpu::{Cpu, Flags};
pub use exec::{Emu, EmuError, RunResult, TRAP_TABLE_MAGIC};
pub use loader::{stub_image, LoadError, MAX_LOAD_BYTES};
pub use runtime::{
    syscalls, ErrorMode, GuestIo, HostRuntime, MemErrKind, MemoryError, ProfileStats, Runtime,
    SyscallOutcome,
};
pub use trace::{ExecBackend, SUPERBLOCK_CAP};

/// Re-exported so runtime constructors can name a policy without
/// depending on `redfat-lowfat` directly.
pub use redfat_lowfat::AllocPolicyKind;
