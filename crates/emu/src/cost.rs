//! The performance cost model and execution counters.
//!
//! The experiments report *slowdown factors*: ratios of modeled cycles
//! between a hardened and a baseline run of the same workload. The model
//! prices instruction classes, memory traffic and control transfers; the
//! interesting quantities (how many check instructions execute, how many
//! trampoline jumps happen) come from the actual rewritten code, not from
//! the model.

/// Cycle prices for instruction classes and events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Every instruction.
    pub base: u64,
    /// Each memory access (load or store), on top of `base`.
    pub mem: u64,
    /// Extra for multiply.
    pub mul: u64,
    /// Extra for divide.
    pub div: u64,
    /// Extra for a taken conditional branch.
    pub branch_taken: u64,
    /// Extra for an unconditional control transfer (`jmp`/`call`/`ret`).
    pub transfer: u64,
    /// Extra when a control transfer crosses between the main text and
    /// the trampoline area -- the "loss of locality" cost of
    /// trampoline-based rewriting the paper's batching optimization
    /// attacks (§6, Example 2).
    pub cross_region: u64,
    /// A `syscall` trap into the runtime.
    pub syscall: u64,
    /// An `int3` trap-table dispatch (the rewriter's 1-byte fallback
    /// tactic; priced like a signal-handler round trip).
    pub int3_trap: u64,
    /// Per-instruction JIT/dispatch overhead; zero for native-style
    /// execution, positive for DBI-style tools (Memcheck baseline).
    pub dbi_dispatch: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            base: 1,
            mem: 1,
            mul: 2,
            div: 20,
            branch_taken: 1,
            transfer: 1,
            cross_region: 2,
            syscall: 40,
            int3_trap: 120,
            dbi_dispatch: 0,
        }
    }
}

/// Execution counters accumulated by a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Instructions retired.
    pub instructions: u64,
    /// Modeled cycles.
    pub cycles: u64,
    /// Memory loads performed.
    pub loads: u64,
    /// Memory stores performed.
    pub stores: u64,
    /// Taken branches (conditional only).
    pub taken_branches: u64,
    /// Unconditional transfers (`jmp`/`call`/`ret`, direct or indirect).
    pub transfers: u64,
    /// Transfers that crossed the text/trampoline boundary.
    pub region_crossings: u64,
    /// Syscalls executed.
    pub syscalls: u64,
    /// `int3` trap-table dispatches.
    pub int3_traps: u64,
}

/// Observability counters for the translated execution backends
/// (superblock and trace-linked tiers).
///
/// Deliberately *not* part of [`Counters`]: the backend lockstep oracle
/// requires `Counters` to be bit-identical between `step()` and the
/// translated backends, while cache probes, chain follows and
/// inline-cache hits are properties of one backend's machinery, not of
/// the guest's execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Block-cache probes that found an existing block.
    pub hits: u64,
    /// Block-cache probes that missed (block decoded, or the probe fell
    /// back to the step interpreter).
    pub misses: u64,
    /// Direct-exit links followed block-to-block without a cache probe.
    pub chain_follows: u64,
    /// Indirect-branch inline-cache hits (`ret`, indirect `jmp`/`call`).
    pub ic_hits: u64,
    /// Indirect-branch inline-cache misses (fell back to the probe path).
    pub ic_misses: u64,
    /// Code-segment invalidations (version bumps).
    pub invalidations: u64,
    /// Stale direct links and inline-cache entries severed after an
    /// invalidation.
    pub links_severed: u64,
}

impl std::fmt::Display for TraceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits {}  misses {}  chain-follows {}  ic-hits {}  ic-misses {}  \
             invalidations {}  links-severed {}",
            self.hits,
            self.misses,
            self.chain_follows,
            self.ic_hits,
            self.ic_misses,
            self.invalidations,
            self.links_severed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_prices_are_sane() {
        let m = CostModel::default();
        assert!(m.base >= 1);
        assert!(m.int3_trap > m.syscall, "trap dispatch dwarfs a syscall");
        assert!(m.div > m.mul);
        assert_eq!(m.dbi_dispatch, 0, "native execution has no JIT tax");
    }
}
