//! Superblock translation cache: the emulator's fast execution backend.
//!
//! The step interpreter ([`Emu::step`]) pays one instruction-cache probe
//! (segment search, slot load, pool indirection, a full [`Inst`] copy)
//! and one fall-through `rip` computation *per instruction*. This module
//! instead decodes a straight-line run of instructions -- up to the next
//! control transfer, or [`SUPERBLOCK_CAP`] -- into a pre-resolved
//! *superblock* on first execution: operands are already split into
//! their [`redfat_x86::Operands`] arms by the decoder, each entry stores
//! its own address and precomputed fall-through `rip`, and execution
//! needs a single cache probe per block.
//!
//! Counter semantics are *identical* to the step interpreter by
//! construction: every entry charges `base + dbi_dispatch` and bumps
//! `instructions` exactly as [`Emu::step`] does, and `cpu.rip` is set to
//! the fall-through address *before* dispatch, so memory-fault and veto
//! addresses, trampoline region-crossing accounting and step budgets all
//! observe the same state. The differential self-test
//! (`redfat-core::selftest`) locksteps this backend against the step
//! interpreter to enforce that equivalence rather than argue it.
//!
//! Like the per-instruction icache, the block cache tracks code segments
//! lazily (one slot array per executed segment) and never invalidates:
//! self-modifying guest code is unsupported by the substrate, so a
//! decoded superblock stays valid for the life of the run.

use crate::exec::{Emu, EmuError, RunResult};
use crate::runtime::Runtime;
use redfat_x86::{decode_one, Inst, Op};
use std::sync::Arc;

/// Upper bound on instructions per superblock. Keeps pathological
/// straight-line runs (huge unrolled loops) from producing unbounded
/// decode work on a cold probe; a capped block simply falls through to
/// the block starting at its end.
pub const SUPERBLOCK_CAP: usize = 64;

/// One pre-resolved instruction of a superblock.
struct TraceInst {
    inst: Inst,
    /// The instruction's own address.
    rip: u64,
    /// Precomputed fall-through address (`rip + length`).
    next: u64,
}

/// A decoded straight-line run ending at a control transfer (or the cap).
pub(crate) struct TraceBlock {
    insts: Vec<TraceInst>,
}

/// Per-segment superblock cache: one `u32` slot per code byte indexing
/// the block that *starts* there (`u32::MAX` = none). Entries never
/// invalidate (no self-modifying code; see module docs).
#[derive(Default)]
pub(crate) struct TraceCache {
    segs: Vec<(u64, u64, Vec<u32>)>, // (base, end, slots)
    blocks: Vec<Arc<TraceBlock>>,
    last: usize,
}

impl TraceCache {
    #[inline]
    fn lookup(&mut self, rip: u64) -> Option<Arc<TraceBlock>> {
        let seg = self.seg_of(rip)?;
        let (base, _, slots) = &self.segs[seg];
        let idx = slots[(rip - base) as usize];
        if idx == u32::MAX {
            None
        } else {
            Some(Arc::clone(&self.blocks[idx as usize]))
        }
    }

    #[inline]
    fn seg_of(&mut self, rip: u64) -> Option<usize> {
        if let Some(&(b, e, _)) = self.segs.get(self.last) {
            if rip >= b && rip < e {
                return Some(self.last);
            }
        }
        for (i, &(b, e, _)) in self.segs.iter().enumerate() {
            if rip >= b && rip < e {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    fn add_seg(&mut self, base: u64, size: u64) {
        self.segs
            .push((base, base + size, vec![u32::MAX; size as usize]));
        self.last = self.segs.len() - 1;
    }

    fn insert(&mut self, rip: u64, block: Arc<TraceBlock>) {
        if let Some(seg) = self.seg_of(rip) {
            let idx = self.blocks.len() as u32;
            self.blocks.push(block);
            let (base, _, slots) = &mut self.segs[seg];
            slots[(rip - *base) as usize] = idx;
        }
    }
}

/// Ops that end a superblock: everything that can transfer control away
/// from the fall-through path (plus `ud2`, which never falls through).
/// `syscall` continues at the next instruction, so it does not end a
/// block; termination outcomes are checked per entry during execution.
#[inline]
fn ends_block(op: Op) -> bool {
    matches!(
        op,
        Op::Jmp | Op::JmpInd | Op::Jcc(_) | Op::Call | Op::CallInd | Op::Ret | Op::Ud2 | Op::Int3
    )
}

/// Which execution backend [`Emu::run_backend`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Per-instruction fetch/decode-cached interpretation ([`Emu::step`]).
    #[default]
    Step,
    /// Superblock translation cache ([`Emu::step_block`]).
    Superblock,
}

impl ExecBackend {
    /// Parses a backend name (`"step"` / `"superblock"`).
    pub fn parse(s: &str) -> Option<ExecBackend> {
        match s {
            "step" => Some(ExecBackend::Step),
            "superblock" => Some(ExecBackend::Superblock),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecBackend::Step => write!(f, "step"),
            ExecBackend::Superblock => write!(f, "superblock"),
        }
    }
}

impl<R: Runtime> Emu<R> {
    /// Decodes the straight-line run starting at `rip` into a cached
    /// superblock. Returns `None` when even the first instruction cannot
    /// be fetched or decoded (the caller defers to [`Emu::step`] so the
    /// error is produced with exactly the interpreter's semantics).
    fn build_block(&mut self, rip: u64) -> Option<Arc<TraceBlock>> {
        let mut insts = Vec::new();
        let mut addr = rip;
        while insts.len() < SUPERBLOCK_CAP {
            let Ok(bytes) = self.vm.fetch(addr, 16) else {
                break;
            };
            let Ok((inst, len)) = decode_one(bytes, addr) else {
                break;
            };
            let next = addr + len as u64;
            let terminal = ends_block(inst.op);
            insts.push(TraceInst {
                inst,
                rip: addr,
                next,
            });
            if terminal {
                break;
            }
            addr = next;
        }
        if insts.is_empty() {
            return None;
        }
        let block = Arc::new(TraceBlock { insts });
        if self.trace.seg_of(rip).is_none() {
            if let Some((base, size)) = self.vm.segment_span(rip) {
                self.trace.add_seg(base, size);
            }
        }
        self.trace.insert(rip, Arc::clone(&block));
        Some(block)
    }

    /// Executes up to `budget` instructions of the superblock at the
    /// current `rip` (one cache probe, then straight-line dispatch).
    ///
    /// Returns how many instructions were retired together with the
    /// step outcome, with *identical* per-instruction counter and error
    /// semantics to calling [`Emu::step`] that many times. A jump into
    /// the middle of an existing block simply starts a new block there;
    /// a `budget` smaller than the block executes a prefix and leaves
    /// `rip` mid-run, where the next call re-enters.
    pub fn step_block(&mut self, budget: u64) -> (u64, Result<Option<RunResult>, EmuError>) {
        if budget == 0 {
            return (0, Ok(None));
        }
        let rip = self.cpu.rip;
        let block = match self.trace.lookup(rip) {
            Some(b) => b,
            None => match self.build_block(rip) {
                Some(b) => b,
                None => {
                    // Unfetchable/undecodable first instruction: the
                    // step interpreter owns the exact error behavior.
                    let before = self.counters.instructions;
                    let r = self.step();
                    return (self.counters.instructions - before, r);
                }
            },
        };
        let n = (block.insts.len() as u64).min(budget) as usize;
        // Charge the whole run up front (per-instruction state is
        // unobservable between the charge and the dispatch: hooks and
        // syscalls never read the counters mid-run) and roll the excess
        // back if an entry terminates or errors early -- the counters
        // then equal a per-instruction charge exactly.
        let per_inst = self.cost.base + self.cost.dbi_dispatch;
        self.counters.instructions += n as u64;
        self.counters.cycles += per_inst * n as u64;
        for (i, ti) in block.insts[..n].iter().enumerate() {
            // Fall-through before dispatch, exactly like `step()`:
            // faults and region-crossing accounting observe `next`.
            self.cpu.rip = ti.next;
            match self.exec(&ti.inst, ti.rip, ti.next) {
                Ok(None) => {}
                done => {
                    let unexecuted = (n - (i + 1)) as u64;
                    self.counters.instructions -= unexecuted;
                    self.counters.cycles -= per_inst * unexecuted;
                    return match done {
                        Ok(some) => ((i + 1) as u64, Ok(some)),
                        Err(e) => ((i + 1) as u64, Err(e)),
                    };
                }
            }
        }
        (n as u64, Ok(None))
    }

    /// Runs until exit, error or `max_steps` instructions using the
    /// superblock backend. Behaviorally identical to [`Emu::run`]
    /// (result, counters, guest-visible state), just faster.
    pub fn run_superblock(&mut self, max_steps: u64) -> RunResult {
        let mut remaining = max_steps;
        while remaining > 0 {
            let (executed, outcome) = self.step_block(remaining);
            remaining -= executed.min(remaining);
            match outcome {
                Ok(None) => {}
                Ok(Some(result)) => return result,
                Err(EmuError::AccessVetoed { error, .. }) => return RunResult::MemoryError(error),
                Err(e) => return RunResult::Error(e),
            }
        }
        RunResult::StepLimit
    }

    /// Runs with the selected backend (see [`ExecBackend`]).
    pub fn run_backend(&mut self, backend: ExecBackend, max_steps: u64) -> RunResult {
        match backend {
            ExecBackend::Step => self.run(max_steps),
            ExecBackend::Superblock => self.run_superblock(max_steps),
        }
    }
}
