//! Translated execution backends: the superblock cache and the
//! trace-linked tier built on top of it.
//!
//! The step interpreter ([`Emu::step`]) pays one instruction-cache probe
//! (segment search, slot load, pool indirection, a full [`Inst`] copy)
//! and one fall-through `rip` computation *per instruction*. The
//! **superblock** backend ([`Emu::step_block`]) instead decodes a
//! straight-line run of instructions -- up to the next control transfer,
//! or [`SUPERBLOCK_CAP`] -- into a pre-resolved block on first
//! execution, so execution needs a single cache probe per block.
//!
//! The **trace-linked** backend ([`Emu::step_trace`]) removes the
//! remaining per-block costs (DESIGN.md §12):
//!
//! * **Trace formation.** Where the superblock tier stops at every
//!   control transfer, the trace builder follows *direct* edges: an
//!   unconditional `jmp`/`call` keeps decoding at its target (the
//!   transfer becomes an interior charge pseudo-op), a conditional
//!   branch keeps decoding along its predicted direction (backward
//!   taken, forward fall-through -- the classic loop heuristic) and
//!   becomes a checked [`FastOp::JccInline`] with a **side exit** for
//!   the other direction, and a `ret` whose matching `call` was inlined
//!   earlier in the same trace becomes [`FastOp::RetInline`]: the
//!   return address is popped and *compared* against the build-time
//!   prediction, so an entire call-return pair of a small helper runs
//!   inside one trace. Formation stops at indirect transfers, at
//!   addresses already in the trace (loop closure), at
//!   [`TRACE_CAP`] instructions or [`MAX_INLINE_DEPTH`] nested inlined
//!   calls. Mispredicted interior branches roll back the unexecuted
//!   tail of the block charge and leave through a per-site side link.
//! * **Chaining.** A trace ending in a direct jump, call, conditional
//!   branch or fall-through stores link slots (`link_taken` /
//!   `link_fall`) naming its successor block, and every interior side
//!   exit has its own link slot. Links are patched on first execution
//!   and validated against the owning segments' versions on every
//!   follow (a trace records one `(segment, version)` dependency per
//!   code segment it decoded from); [`Emu::invalidate_code`] bumps the
//!   version, which lazily severs every stale link. Hot loops run
//!   trace-to-trace without touching the block cache at all.
//! * **Indirect-branch inline caches.** Blocks ending in `ret` or an
//!   indirect `jmp`/`call` carry a tiny per-exit-site cache of
//!   (observed target → block index) pairs, probed before the global
//!   cache and maintained LRU. Version-checked like direct links.
//! * **Dead-flag elision.** At build time,
//!   [`redfat_analysis::dead_flags_in_run`] marks instructions whose
//!   EFLAGS outputs are provably overwritten before any read *within
//!   the block*, under a conservative "flags live at every possible
//!   exit" rule (any instruction that can fault, trap or leave the
//!   block pins flags live). Marked instructions execute through pure
//!   value helpers ([`alu_value`]/[`shift_value`]) or with the flag
//!   helpers muted (`Emu::noflags`), skipping flag materialization.
//! * **Build-time specialization.** The block body is compiled into a
//!   dense [`FastOp`] stream: operand shapes resolved once at decode
//!   time (register codes, width-masked immediates, flattened
//!   [`MemFast`] addressing), sized so the hot loop streams small
//!   fixed-width entries instead of full [`Inst`] records. Fast paths
//!   never store the architectural `rip` (it is unobservable between
//!   exits); instructions that can fault pass their fall-through
//!   address to [`Emu::load_at_rip`]/[`Emu::store_at_rip`] so faults
//!   report exactly the `rip` the step interpreter would, and the cold
//!   error path materializes `cpu.rip` before unwinding.
//!
//! Counter semantics are *identical* to the step interpreter by
//! construction on all backends: every entry charges
//! `base + dbi_dispatch` and bumps `instructions` exactly as
//! [`Emu::step`] does, block-level charges are rolled back on early
//! exit, terminal transfers replicate `step()`'s branch/transfer/
//! crossing accounting (`ret` and register-indirect `jmp`/`call`
//! terminals are replicated inline; memory-indirect forms and traps
//! defer to the interpreter), and a budget smaller than the block falls
//! back to exact per-instruction interpretation (with elision disabled,
//! so flags are architecturally exact at the step-limit boundary). The
//! differential self-test (`redfat-core::selftest`) locksteps both
//! backends against the step interpreter to enforce that equivalence
//! rather than argue it.
//!
//! The **fast** tier ([`Emu::step_fast`]) reuses the trace machinery
//! and removes the per-access costs the trace tier still shares with
//! `step()` (DESIGN.md §12's measured ceiling), under three cooperating
//! optimizations:
//!
//! * **Host-pointer caching.** Every memory-touching trace op owns a
//!   [`MemSlot`]: a `(page, segment, epoch)` resolution cache that lets
//!   repeat accesses through the same operand skip the software-MMU
//!   lookup *and* the protection check entirely
//!   ([`redfat_vm::Vm::read_cached`]). Slots die with their block
//!   (rebuilds after [`Emu::invalidate_code`] get fresh ones) and are
//!   retired wholesale by the VM epoch when segments are mapped or
//!   grown; any miss falls back to the tagged-TLB path with exact
//!   fault semantics.
//! * **Batched counters.** The build-time-known counter contributions
//!   of a block's predicted path (memory cycles, loads/stores,
//!   interior transfer accounting) are precomputed as prefix sums
//!   ([`StaticCharge`]) and flushed in one batch at block entry instead
//!   of per instruction; early exits roll back to the exiting op's
//!   prefix and recharge its actual partial effects, so `Counters` are
//!   bit-identical to `step()` at *every* `step_fast` return.
//! * **Hook elision.** `step_fast` is compiled per runtime: when
//!   [`Runtime::OBSERVES_MEMORY`] is `false` (the stock `redfat run`
//!   case) the memory path contains no hook dispatch at all; observing
//!   runtimes transparently degrade to trace-tier semantics.
//!
//! What the fast tier changes is *when* mid-trace state becomes
//! current, never whether: with no access hook attached, nothing can
//! observe counters or registers between trace entry and exit, and
//! every exit (including faults, which recharge their op's exact
//! partial) restores bit-exact `step()` state. The boundary-audit
//! oracle (`redfat-core::selftest`) enforces exactly that contract at
//! every trace boundary; budgets smaller than a block still interpret
//! per-instruction, so `StepLimit` states stay bit-identical too.
//!
//! Cache-maintenance counters live in [`TraceStats`], deliberately
//! outside [`crate::Counters`] (the lockstep oracle requires `Counters`
//! to be bit-identical across backends).

use crate::cost::{CostModel, Counters, TraceStats};
use crate::exec::{alu_value, in_tramp, shift_value, width_mask, Emu, EmuError, RunResult};
use crate::runtime::Runtime;
use redfat_vm::{MemSlot, Vm, VmFault};
use redfat_x86::{decode_one, AluOp, Cond, Inst, Mem, MulDivOp, Op, Operands, Reg, ShiftOp, Width};

/// Upper bound on instructions per superblock. Keeps pathological
/// straight-line runs (huge unrolled loops) from producing unbounded
/// decode work on a cold probe; a capped block simply falls through to
/// the block starting at its end.
pub const SUPERBLOCK_CAP: usize = 64;

/// Upper bound on instructions per *trace* (the mega-block form built
/// by the trace-linked tier, which keeps decoding across direct
/// edges). Must stay below `u8::MAX`: slow-path ops index the decoded
/// instruction table with a `u8`.
pub const TRACE_CAP: usize = 192;

/// Maximum depth of `call`s inlined into one trace (bounds the
/// build-time return stack; recursion stops at the cap).
pub const MAX_INLINE_DEPTH: usize = 8;

/// "No successor linked" sentinel for link slots and IC entries.
const NO_LINK: u32 = u32::MAX;

/// Ways in the per-exit-site indirect-branch inline cache.
const IC_WAYS: usize = 2;

/// "No register" sentinel in [`MemFast`].
const NO_REG: u8 = 0xFF;

const RSP: usize = Reg::Rsp as usize;

/// A memory operand flattened for the fast path: register codes with a
/// sentinel instead of `Option<Reg>`, and RIP-relative forms already
/// reduced to an absolute displacement (the decoder resolves them).
/// Segment overrides are ignored, exactly like [`Emu::ea`].
#[derive(Clone, Copy)]
struct MemFast {
    base: u8,
    index: u8,
    scale: u8,
    disp: i64,
}

impl MemFast {
    fn from(m: &Mem) -> MemFast {
        if m.rip {
            return MemFast {
                base: NO_REG,
                index: NO_REG,
                scale: 0,
                disp: m.disp,
            };
        }
        MemFast {
            base: m.base.map_or(NO_REG, Reg::code),
            index: m.index.map_or(NO_REG, Reg::code),
            scale: m.scale,
            disp: m.disp,
        }
    }
}

/// Effective address of a flattened memory operand; mirrors [`Emu::ea`].
#[inline(always)]
fn ea_fast(regs: &[u64; 16], m: &MemFast) -> u64 {
    let mut a = m.disp as u64;
    if m.base != NO_REG {
        a = a.wrapping_add(regs[m.base as usize]);
    }
    if m.index != NO_REG {
        a = a.wrapping_add(regs[m.index as usize].wrapping_mul(m.scale as u64));
    }
    a
}

/// Register read at width; mirrors `Cpu::read` without the `Reg`
/// round-trip.
#[inline(always)]
fn rd(regs: &[u64; 16], r: u8, w: Width) -> u64 {
    let v = regs[r as usize];
    match w {
        Width::W8 => v & 0xFF,
        Width::W32 => v & 0xFFFF_FFFF,
        Width::W64 => v,
    }
}

/// Register write at width with x86-64 semantics; mirrors `Cpu::write`.
#[inline(always)]
fn wr(regs: &mut [u64; 16], r: u8, w: Width, v: u64) {
    let slot = &mut regs[r as usize];
    match w {
        Width::W8 => *slot = (*slot & !0xFF) | (v & 0xFF),
        Width::W32 => *slot = v & 0xFFFF_FFFF,
        Width::W64 => *slot = v,
    }
}

/// Register-extension kinds with a fast path.
#[derive(Clone, Copy)]
enum ExtKind {
    Zx8,
    Sx8,
    Sxd,
}

/// Build-time specialization of one instruction. `Slow` defers to the
/// full interpreter arm ([`Emu::exec`]) via an index into the block's
/// decoded [`TraceInst`] table; every other variant replicates the
/// corresponding `exec` arm exactly (same reads, same widths, same
/// fault order) with the operand shape pre-resolved. Variants that
/// touch memory carry their fall-through address so faults report the
/// exact `rip` the step interpreter would.
#[derive(Clone, Copy)]
enum FastOp {
    /// Full interpreter dispatch of `insts[idx]`.
    Slow {
        idx: u8,
    },
    /// Full interpreter dispatch with flag computation muted (the
    /// instruction's flag outputs are provably dead in this block and
    /// it cannot exit the run).
    SlowElide {
        idx: u8,
    },
    /// No architectural effect: `nop`, or a `cmp`/`test` whose flags
    /// are dead.
    Nop,
    MovRR {
        w64: bool,
        dst: u8,
        src: u8,
    },
    /// `imm` already width-masked for a full register write.
    MovRI {
        dst: u8,
        imm: u64,
    },
    AluRR {
        op: AluOp,
        w: Width,
        dst: u8,
        src: u8,
        flags: bool,
    },
    AluRI {
        op: AluOp,
        w: Width,
        dst: u8,
        imm: u64,
        flags: bool,
    },
    AluRM {
        op: AluOp,
        w: Width,
        dst: u8,
        flags: bool,
        mem: MemFast,
        next: u64,
    },
    TestRR {
        w: Width,
        a: u8,
        b: u8,
    },
    TestRI {
        w: Width,
        a: u8,
        imm: u64,
    },
    Lea {
        w: Width,
        dst: u8,
        mem: MemFast,
    },
    LoadRM {
        w: Width,
        dst: u8,
        mem: MemFast,
        next: u64,
    },
    StoreMR {
        w: Width,
        src: u8,
        mem: MemFast,
        next: u64,
    },
    StoreMI {
        w: Width,
        imm: u64,
        mem: MemFast,
        next: u64,
    },
    ExtRR {
        kind: ExtKind,
        dst: u8,
        src: u8,
    },
    ExtRM {
        kind: ExtKind,
        dst: u8,
        mem: MemFast,
        next: u64,
    },
    SetccR {
        cond: Cond,
        dst: u8,
    },
    CmovRR {
        cond: Cond,
        w: Width,
        dst: u8,
        src: u8,
    },
    ShiftRI {
        op: ShiftOp,
        w: Width,
        dst: u8,
        count: u32,
        flags: bool,
    },
    PushR {
        src: u8,
        next: u64,
    },
    PopR {
        dst: u8,
        next: u64,
    },
    Cqo {
        w64: bool,
    },
    Imul2RR {
        w: Width,
        dst: u8,
        src: u8,
    },
    Imul2RM {
        w: Width,
        dst: u8,
        mem: MemFast,
        next: u64,
    },
    /// `imm` already width-masked.
    Imul3RRI {
        w: Width,
        dst: u8,
        src: u8,
        imm: u64,
    },
    MulDivR {
        op: MulDivOp,
        w: Width,
        src: u8,
        rip: u64,
        next: u64,
    },
    /// Interior direct `jmp` (trace formation followed the edge):
    /// transfer/crossing accounting only, control stays in-trace.
    ChargeJmp {
        next: u64,
        to: u64,
    },
    /// Interior direct `call`: push the return address (faultable),
    /// then transfer accounting; the callee body follows in-trace.
    ChargeCall {
        next: u64,
        to: u64,
    },
    /// Interior conditional branch. The trace was built along the
    /// `expect_taken` direction; when the runtime outcome matches,
    /// control stays in-trace (accounting only), otherwise the op sets
    /// `rip` and leaves through side link `side`.
    JccInline {
        cond: Cond,
        expect_taken: bool,
        next: u64,
        to: u64,
        side: u16,
    },
    /// Interior `ret` whose matching `call` was inlined earlier in the
    /// trace: pop + transfer accounting, then the popped target is
    /// compared against the build-time return address `expect`; a
    /// mismatch (stack rewritten under us) leaves through `side`.
    RetInline {
        expect: u64,
        next: u64,
        side: u16,
    },
    /// Fused compare-and-branch: an adjacent `cmp`/`test` +
    /// [`FastOp::JccInline`] pair whose flags are provably dead after
    /// the branch *within the trace*
    /// ([`redfat_analysis::flags_live_after_run`]). The condition is
    /// evaluated directly from the operands -- no flag materialization
    /// on the predicted path; the mispredict side exit materializes
    /// the compare's flags exactly before leaving (the operand
    /// registers are untouched between the pair). The compare's slot
    /// in the op stream stays as a [`FastOp::Nop`] so op indices keep
    /// matching instruction indices for charge rollback.
    CmpJcc {
        w: Width,
        a: u8,
        /// `NO_REG` selects `imm` as the right-hand side.
        b: u8,
        imm: u64,
        /// `test` (and) semantics instead of `cmp` (sub).
        test: bool,
        cond: Cond,
        expect_taken: bool,
        next: u64,
        to: u64,
        side: u16,
    },
}

/// Build-time-known counter contributions of one trace op on its
/// *predicted* (in-trace) path. The fast tier accumulates these as
/// prefix sums over the op stream ([`TraceBlock::charge`]), charges the
/// block total in one batch at entry, and on an early exit at op `i`
/// rolls back to prefix `i` (or `i + 1` for ops whose fault path keeps
/// their charge: `step()` prices memory before the access faults) plus
/// the op's recharged actual effects. Assumes the cost model is fixed
/// for the cache's lifetime, which it is: `Emu::cost` is configured
/// before execution starts.
#[derive(Clone, Copy, Default)]
struct StaticCharge {
    cycles: u32,
    loads: u16,
    stores: u16,
    taken_branches: u16,
    transfers: u16,
    crossings: u16,
}

impl StaticCharge {
    #[inline(always)]
    fn add(&mut self, o: StaticCharge) {
        self.cycles += o.cycles;
        self.loads += o.loads;
        self.stores += o.stores;
        self.taken_branches += o.taken_branches;
        self.transfers += o.transfers;
        self.crossings += o.crossings;
    }

    /// Field-wise `self - o`; callers only subtract a prefix from a
    /// total that contains it.
    #[inline(always)]
    fn minus(self, o: StaticCharge) -> StaticCharge {
        StaticCharge {
            cycles: self.cycles - o.cycles,
            loads: self.loads - o.loads,
            stores: self.stores - o.stores,
            taken_branches: self.taken_branches - o.taken_branches,
            transfers: self.transfers - o.transfers,
            crossings: self.crossings - o.crossings,
        }
    }

    #[inline(always)]
    fn apply(self, c: &mut Counters) {
        c.cycles += self.cycles as u64;
        c.loads += self.loads as u64;
        c.stores += self.stores as u64;
        c.taken_branches += self.taken_branches as u64;
        c.transfers += self.transfers as u64;
        c.region_crossings += self.crossings as u64;
    }

    #[inline(always)]
    fn revert(self, c: &mut Counters) {
        c.cycles -= self.cycles as u64;
        c.loads -= self.loads as u64;
        c.stores -= self.stores as u64;
        c.taken_branches -= self.taken_branches as u64;
        c.transfers -= self.transfers as u64;
        c.region_crossings -= self.crossings as u64;
    }
}

/// The static (build-time-known) charge of `op`'s predicted path,
/// mirroring exactly what the trace tier accounts dynamically. Kept
/// dynamic on purpose: `MulDivR` ([`Emu::muldiv`] self-charges, and the
/// div price must land even on `DivideError`), the multiply cycle of
/// `Imul2RM` (priced only after its load succeeds, like `exec`), and
/// everything behind `Slow`/`SlowElide`.
fn static_charge(op: &FastOp, cost: &CostModel) -> StaticCharge {
    let mut c = StaticCharge::default();
    let crossing = |c: &mut StaticCharge, a: u64, b: u64| {
        if in_tramp(a) != in_tramp(b) {
            c.crossings = 1;
            c.cycles += cost.cross_region as u32;
        }
    };
    match *op {
        FastOp::LoadRM { .. }
        | FastOp::ExtRM { .. }
        | FastOp::AluRM { .. }
        | FastOp::Imul2RM { .. }
        | FastOp::PopR { .. } => {
            c.loads = 1;
            c.cycles = cost.mem as u32;
        }
        FastOp::StoreMR { .. } | FastOp::StoreMI { .. } | FastOp::PushR { .. } => {
            c.stores = 1;
            c.cycles = cost.mem as u32;
        }
        FastOp::Imul2RR { .. } | FastOp::Imul3RRI { .. } => c.cycles = cost.mul as u32,
        FastOp::ChargeJmp { next, to } => {
            c.transfers = 1;
            c.cycles = cost.transfer as u32;
            crossing(&mut c, next, to);
        }
        FastOp::ChargeCall { next, to } => {
            c.stores = 1;
            c.transfers = 1;
            c.cycles = (cost.mem + cost.transfer) as u32;
            crossing(&mut c, next, to);
        }
        FastOp::JccInline {
            expect_taken,
            next,
            to,
            ..
        }
        | FastOp::CmpJcc {
            expect_taken,
            next,
            to,
            ..
        } if expect_taken => {
            c.taken_branches = 1;
            c.cycles = cost.branch_taken as u32;
            crossing(&mut c, next, to);
        }
        FastOp::RetInline { expect, next, .. } => {
            c.loads = 1;
            c.transfers = 1;
            c.cycles = (cost.mem + cost.transfer) as u32;
            crossing(&mut c, next, expect);
        }
        _ => {}
    }
    c
}

/// Whether the fast tier's dispatch of `op` consumes one
/// [`TraceBlock::mem_cache`] slot (must match the `FAST` arms of the
/// body loop, in program order).
fn uses_mem_slot(op: &FastOp) -> bool {
    matches!(
        op,
        FastOp::AluRM { .. }
            | FastOp::LoadRM { .. }
            | FastOp::StoreMR { .. }
            | FastOp::StoreMI { .. }
            | FastOp::ExtRM { .. }
            | FastOp::PushR { .. }
            | FastOp::PopR { .. }
            | FastOp::Imul2RM { .. }
            | FastOp::ChargeCall { .. }
            | FastOp::RetInline { .. }
    )
}

/// Width dispatch over [`Vm::read_cached`]: [`Emu::load_at_rip`] minus
/// the hook dispatch and the per-access counter writes, both of which
/// the fast tier batches or elides.
#[inline(always)]
fn read_cached_w(vm: &Vm, addr: u64, w: Width, slot: &MemSlot) -> Result<u64, VmFault> {
    Ok(match w {
        Width::W8 => vm.read_cached::<1>(addr, slot)?[0] as u64,
        Width::W32 => u32::from_le_bytes(vm.read_cached::<4>(addr, slot)?) as u64,
        Width::W64 => u64::from_le_bytes(vm.read_cached::<8>(addr, slot)?),
    })
}

/// Width dispatch over [`Vm::write_cached`]; see [`read_cached_w`].
#[inline(always)]
fn write_cached_w(vm: &mut Vm, addr: u64, w: Width, v: u64, slot: &MemSlot) -> Result<(), VmFault> {
    match w {
        Width::W8 => vm.write_cached(addr, &[v as u8], slot),
        Width::W32 => vm.write_cached(addr, &(v as u32).to_le_bytes(), slot),
        Width::W64 => vm.write_cached(addr, &v.to_le_bytes(), slot),
    }
}

/// Sign-extended value of a width-masked operand.
#[inline(always)]
fn sx(w: Width, v: u64) -> i64 {
    match w {
        Width::W8 => v as u8 as i8 as i64,
        Width::W32 => v as u32 as i32 as i64,
        Width::W64 => v as i64,
    }
}

/// Whether [`cmp_cond`]/[`test_cond`] can evaluate `cond` directly
/// (the unsupported combinations need the overflow/parity bits of a
/// subtraction, which cost as much as materializing the flags).
fn fusable_cond(cond: Cond, test: bool) -> bool {
    !matches!(cond, Cond::O | Cond::No | Cond::P | Cond::Np) || test
}

/// `cond` after `cmp a, b` (sub compare), via the standard x86
/// identities (zf ⇔ `a == b`, cf ⇔ unsigned borrow, sf≠of ⇔ signed
/// less-than); operands are width-masked.
#[inline(always)]
fn cmp_cond(cond: Cond, w: Width, a: u64, b: u64) -> bool {
    match cond {
        Cond::E => a == b,
        Cond::Ne => a != b,
        Cond::B => a < b,
        Cond::Ae => a >= b,
        Cond::Be => a <= b,
        Cond::A => a > b,
        Cond::L => sx(w, a) < sx(w, b),
        Cond::Ge => sx(w, a) >= sx(w, b),
        Cond::Le => sx(w, a) <= sx(w, b),
        Cond::G => sx(w, a) > sx(w, b),
        Cond::S => sx(w, a.wrapping_sub(b) & width_mask(w)) < 0,
        Cond::Ns => sx(w, a.wrapping_sub(b) & width_mask(w)) >= 0,
        Cond::O | Cond::No | Cond::P | Cond::Np => unreachable!("not fused"),
    }
}

/// `cond` after `test a, b` (`r = a & b`, cf = of = 0); `r` is
/// width-masked.
#[inline(always)]
fn test_cond(cond: Cond, w: Width, r: u64) -> bool {
    match cond {
        Cond::E | Cond::Be => r == 0,
        Cond::Ne | Cond::A => r != 0,
        Cond::B | Cond::O => false,
        Cond::Ae | Cond::No => true,
        Cond::S | Cond::L => sx(w, r) < 0,
        Cond::Ns | Cond::Ge => sx(w, r) >= 0,
        Cond::Le => r == 0 || sx(w, r) < 0,
        Cond::G => r != 0 && sx(w, r) >= 0,
        Cond::P => (r as u8).count_ones().is_multiple_of(2),
        Cond::Np => !(r as u8).count_ones().is_multiple_of(2),
    }
}

/// Resolves an instruction's fast path. `dead_flags` is the verdict of
/// [`redfat_analysis::dead_flags_in_run`]: when true the instruction
/// must-writes all flags, cannot exit the run, and no later instruction
/// reads its flag outputs before they are overwritten.
fn specialize(inst: &Inst, rip: u64, next: u64, idx: u8, dead_flags: bool) -> FastOp {
    use Operands as O;
    let w = inst.w;
    match (inst.op, &inst.operands) {
        (Op::Nop, O::None) => FastOp::Nop,
        (Op::Push, O::R(r)) => FastOp::PushR {
            src: r.code(),
            next,
        },
        (Op::Pop, O::R(r)) => FastOp::PopR {
            dst: r.code(),
            next,
        },
        (Op::Cqo, O::None) => FastOp::Cqo {
            w64: w == Width::W64,
        },
        (Op::Imul2, O::RR { dst, src }) => FastOp::Imul2RR {
            w,
            dst: dst.code(),
            src: src.code(),
        },
        (Op::Imul2, O::RM { dst, src }) => FastOp::Imul2RM {
            w,
            dst: dst.code(),
            mem: MemFast::from(src),
            next,
        },
        (Op::Imul3, O::RRI { dst, src, imm }) => FastOp::Imul3RRI {
            w,
            dst: dst.code(),
            src: src.code(),
            imm: *imm as u64 & width_mask(w),
        },
        (Op::MulDiv(op), O::R(r)) => FastOp::MulDivR {
            op,
            w,
            src: r.code(),
            rip,
            next,
        },
        (Op::Mov, O::RR { dst, src }) if w != Width::W8 => FastOp::MovRR {
            w64: w == Width::W64,
            dst: dst.code(),
            src: src.code(),
        },
        (Op::Mov, O::RI { dst, imm }) if w != Width::W8 => FastOp::MovRI {
            dst: dst.code(),
            imm: *imm as u64 & width_mask(w),
        },
        (Op::Mov, O::RM { dst, src }) => FastOp::LoadRM {
            w,
            dst: dst.code(),
            mem: MemFast::from(src),
            next,
        },
        (Op::Mov, O::MR { dst, src }) => FastOp::StoreMR {
            w,
            src: src.code(),
            mem: MemFast::from(dst),
            next,
        },
        (Op::Mov, O::MI { dst, imm }) => FastOp::StoreMI {
            w,
            imm: *imm as u64,
            mem: MemFast::from(dst),
            next,
        },
        (Op::Movzx8, O::RR { dst, src }) => FastOp::ExtRR {
            kind: ExtKind::Zx8,
            dst: dst.code(),
            src: src.code(),
        },
        (Op::Movsx8, O::RR { dst, src }) => FastOp::ExtRR {
            kind: ExtKind::Sx8,
            dst: dst.code(),
            src: src.code(),
        },
        (Op::Movsxd, O::RR { dst, src }) => FastOp::ExtRR {
            kind: ExtKind::Sxd,
            dst: dst.code(),
            src: src.code(),
        },
        (Op::Movzx8, O::RM { dst, src }) => FastOp::ExtRM {
            kind: ExtKind::Zx8,
            dst: dst.code(),
            mem: MemFast::from(src),
            next,
        },
        (Op::Movsx8, O::RM { dst, src }) => FastOp::ExtRM {
            kind: ExtKind::Sx8,
            dst: dst.code(),
            mem: MemFast::from(src),
            next,
        },
        (Op::Movsxd, O::RM { dst, src }) => FastOp::ExtRM {
            kind: ExtKind::Sxd,
            dst: dst.code(),
            mem: MemFast::from(src),
            next,
        },
        (Op::Lea, O::RM { dst, src }) => FastOp::Lea {
            w,
            dst: dst.code(),
            mem: MemFast::from(src),
        },
        (Op::Alu(op), O::RR { dst, src }) => {
            if dead_flags && op == AluOp::Cmp {
                FastOp::Nop
            } else {
                FastOp::AluRR {
                    op,
                    w,
                    dst: dst.code(),
                    src: src.code(),
                    flags: !dead_flags,
                }
            }
        }
        (Op::Alu(op), O::RI { dst, imm }) => {
            if dead_flags && op == AluOp::Cmp {
                FastOp::Nop
            } else {
                FastOp::AluRI {
                    op,
                    w,
                    dst: dst.code(),
                    imm: *imm as u64 & width_mask(w),
                    flags: !dead_flags,
                }
            }
        }
        (Op::Alu(op), O::RM { dst, src }) => FastOp::AluRM {
            op,
            w,
            dst: dst.code(),
            flags: !dead_flags,
            mem: MemFast::from(src),
            next,
        },
        (Op::Test, O::RR { dst, src }) => {
            if dead_flags {
                FastOp::Nop
            } else {
                FastOp::TestRR {
                    w,
                    a: dst.code(),
                    b: src.code(),
                }
            }
        }
        (Op::Test, O::RI { dst, imm }) => {
            if dead_flags {
                FastOp::Nop
            } else {
                FastOp::TestRI {
                    w,
                    a: dst.code(),
                    imm: *imm as u64 & width_mask(w),
                }
            }
        }
        (Op::Shift(op), O::RI { dst, imm }) => FastOp::ShiftRI {
            op,
            w,
            dst: dst.code(),
            count: *imm as u32,
            flags: !dead_flags,
        },
        (Op::Setcc(c), O::R(r)) => FastOp::SetccR {
            cond: c,
            dst: r.code(),
        },
        (Op::Cmovcc(c), O::RR { dst, src }) => FastOp::CmovRR {
            cond: c,
            w,
            dst: dst.code(),
            src: src.code(),
        },
        _ => {
            if dead_flags {
                FastOp::SlowElide { idx }
            } else {
                FastOp::Slow { idx }
            }
        }
    }
}

/// One decoded instruction of a block, kept for the slow path, the
/// budget-limited prefix path and terminal handling. The hot loop
/// streams the parallel [`FastOp`] array instead.
struct TraceInst {
    inst: Inst,
    /// The instruction's own address.
    rip: u64,
    /// Precomputed fall-through address (`rip + length`).
    next: u64,
}

/// How a block hands off control, pre-resolved for inline terminal
/// handling and successor linking.
#[derive(Clone, Copy)]
enum BlockExit {
    /// Capped straight-line run: control continues at the last entry's
    /// fall-through address.
    Fall,
    /// Direct `jmp`.
    Jmp { to: u64 },
    /// Direct conditional branch (taken → `to`, else fall-through).
    Jcc { cond: Cond, to: u64 },
    /// Direct `call` (pushes the return address, then jumps).
    Call { to: u64 },
    /// `ret`: inline pop + transfer, successor via the inline cache.
    Ret,
    /// Register-indirect `jmp`: target read inline, IC successor.
    JmpIndR { src: u8 },
    /// Register-indirect `call`: push + transfer inline, IC successor.
    CallIndR { src: u8 },
    /// Memory-indirect `jmp`/`call` and `int3` trap dispatch: terminal
    /// executed via the interpreter, successor via the inline cache.
    Indirect,
    /// Terminal executed via the interpreter with no successor worth
    /// predicting (`ud2`, malformed control flow).
    Other,
}

impl BlockExit {
    /// Whether the successor target is data-dependent (resolved through
    /// the inline cache rather than the direct link slots).
    #[inline]
    fn is_indirect(self) -> bool {
        matches!(
            self,
            BlockExit::Ret
                | BlockExit::JmpIndR { .. }
                | BlockExit::CallIndR { .. }
                | BlockExit::Indirect
                | BlockExit::Other
        )
    }
}

/// Build-time classification of a decoded instruction inside a trace:
/// either an ordinary body instruction (`None`), or a direct transfer
/// the builder followed, which executes as an interior pseudo-op.
enum Interior {
    None,
    Jmp {
        to: u64,
    },
    Call {
        to: u64,
    },
    Jcc {
        cond: Cond,
        to: u64,
        expect_taken: bool,
    },
    Ret {
        expect: u64,
    },
}

/// The [`BlockExit`] a terminal instruction produces when the trace
/// ends at it (also used to demote a followed edge whose target turned
/// out to be undecodable).
fn exit_of(inst: &Inst) -> BlockExit {
    match (inst.op, &inst.operands) {
        (Op::Jmp, Operands::Rel(t)) => BlockExit::Jmp { to: *t },
        (Op::Jcc(c), Operands::Rel(t)) => BlockExit::Jcc { cond: c, to: *t },
        (Op::Call, Operands::Rel(t)) => BlockExit::Call { to: *t },
        (Op::Ret, Operands::None) => BlockExit::Ret,
        (Op::JmpInd, Operands::R(r)) => BlockExit::JmpIndR { src: r.code() },
        (Op::CallInd, Operands::R(r)) => BlockExit::CallIndR { src: r.code() },
        (Op::Ret | Op::JmpInd | Op::CallInd | Op::Int3, _) => BlockExit::Indirect,
        _ => BlockExit::Other,
    }
}

/// A decoded straight-line run ending at a control transfer (or the
/// cap), plus its chaining state.
pub(crate) struct TraceBlock {
    /// Dense body dispatch stream (terminal excluded unless the block
    /// falls through at the cap); parallel to `insts[..ops.len()]`.
    ops: Box<[FastOp]>,
    insts: Box<[TraceInst]>,
    exit: BlockExit,
    /// The address the block starts at (side links validate their
    /// target against this: a `ret` side exit is data-dependent).
    start: u64,
    /// `(segment index, version)` dependency per code segment the
    /// trace decoded from (a trace may cross segments through followed
    /// calls/jumps). Any version mismatch means the block is stale: it
    /// is never entered via links and its slot was cleared by the
    /// invalidation.
    deps: Box<[(u32, u32)]>,
    /// Direct-exit successor links (`NO_LINK` = not yet patched).
    /// `link_taken` covers the jump/call/branch-taken edge,
    /// `link_fall` the fall-through edge.
    link_taken: u32,
    link_fall: u32,
    /// One successor link per interior side exit (mispredicted
    /// [`FastOp::JccInline`] direction / [`FastOp::RetInline`] target).
    side_links: Box<[u32]>,
    /// Indirect-branch inline cache: (observed target, block index),
    /// most recent first.
    ic: [(u64, u32); IC_WAYS],
    /// Prefix sums of the ops' static charges (`charge[i]` covers
    /// `ops[..i]`; `charge[ops.len()]` is the block total), flushed as
    /// one batch at entry by the fast tier; ignored by the trace tier.
    charge: Box<[StaticCharge]>,
    /// One host-resolution cache slot per memory-touching op (see
    /// [`uses_mem_slot`]), consumed in program order by the fast tier.
    /// Dies with the block: invalidation rebuilds get fresh slots.
    mem_cache: Box<[MemSlot]>,
}

/// Per-segment block cache: one `u32` slot per code byte indexing the
/// block that *starts* there (`u32::MAX` = none), plus a version
/// counter bumped by [`Emu::invalidate_code`]. Invalidation clears the
/// slots and strands the segment's existing blocks (links to them fail
/// the version check and are severed lazily).
struct TraceSeg {
    base: u64,
    end: u64,
    slots: Vec<u32>,
    version: u32,
}

#[derive(Default)]
pub(crate) struct TraceCache {
    segs: Vec<TraceSeg>,
    blocks: Vec<TraceBlock>,
    last: usize,
    pub(crate) stats: TraceStats,
}

impl TraceCache {
    #[inline]
    fn lookup_idx(&mut self, rip: u64) -> Option<u32> {
        let seg = self.seg_of(rip)?;
        let s = &self.segs[seg];
        let idx = s.slots[(rip - s.base) as usize];
        if idx == NO_LINK {
            None
        } else {
            Some(idx)
        }
    }

    #[inline]
    fn seg_of(&mut self, rip: u64) -> Option<usize> {
        if let Some(s) = self.segs.get(self.last) {
            if rip >= s.base && rip < s.end {
                return Some(self.last);
            }
        }
        for (i, s) in self.segs.iter().enumerate() {
            if rip >= s.base && rip < s.end {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    fn add_seg(&mut self, base: u64, size: u64) -> usize {
        self.segs.push(TraceSeg {
            base,
            end: base + size,
            slots: vec![NO_LINK; size as usize],
            version: 0,
        });
        self.last = self.segs.len() - 1;
        self.last
    }

    #[allow(clippy::too_many_arguments)]
    fn insert(
        &mut self,
        seg: usize,
        rip: u64,
        ops: Vec<FastOp>,
        insts: Vec<TraceInst>,
        exit: BlockExit,
        side_count: usize,
        deps: Vec<(u32, u32)>,
        cost: &CostModel,
    ) -> u32 {
        let mut charge = Vec::with_capacity(ops.len() + 1);
        let mut acc = StaticCharge::default();
        charge.push(acc);
        let mut mem_slots = 0usize;
        for op in &ops {
            acc.add(static_charge(op, cost));
            charge.push(acc);
            mem_slots += uses_mem_slot(op) as usize;
        }
        let idx = self.blocks.len() as u32;
        self.blocks.push(TraceBlock {
            ops: ops.into_boxed_slice(),
            insts: insts.into_boxed_slice(),
            exit,
            start: rip,
            deps: deps.into_boxed_slice(),
            link_taken: NO_LINK,
            link_fall: NO_LINK,
            side_links: vec![NO_LINK; side_count].into_boxed_slice(),
            ic: [(0, NO_LINK); IC_WAYS],
            charge: charge.into_boxed_slice(),
            mem_cache: vec![MemSlot::default(); mem_slots].into_boxed_slice(),
        });
        let base = self.segs[seg].base;
        self.segs[seg].slots[(rip - base) as usize] = idx;
        idx
    }

    /// Whether a linked block is still current (none of the segments
    /// it decoded from have been invalidated since it was built).
    #[inline]
    fn block_current(&self, idx: u32) -> bool {
        self.blocks[idx as usize]
            .deps
            .iter()
            .all(|&(s, v)| self.segs[s as usize].version == v)
    }

    /// Invalidates the code segment containing `addr`: bumps the
    /// version (severing every link into the segment's blocks on next
    /// follow) and clears the slot array so re-execution rebuilds.
    /// Returns whether a tracked segment was hit.
    pub(crate) fn invalidate_addr(&mut self, addr: u64) -> bool {
        match self.seg_of(addr) {
            Some(si) => {
                let s = &mut self.segs[si];
                s.version = s.version.wrapping_add(1);
                s.slots.fill(NO_LINK);
                self.stats.invalidations += 1;
                true
            }
            None => false,
        }
    }
}

/// Ops that end a block: everything that can transfer control away
/// from the fall-through path (plus `ud2`, which never falls through).
/// `syscall` continues at the next instruction, so it does not end a
/// block; termination outcomes are checked per entry during execution.
#[inline]
fn ends_block(op: Op) -> bool {
    matches!(
        op,
        Op::Jmp | Op::JmpInd | Op::Jcc(_) | Op::Call | Op::CallInd | Op::Ret | Op::Ud2 | Op::Int3
    )
}

/// Which execution backend [`Emu::run_backend`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecBackend {
    /// Per-instruction fetch/decode-cached interpretation ([`Emu::step`]).
    #[default]
    Step,
    /// Superblock translation cache ([`Emu::step_block`]).
    Superblock,
    /// Trace-linked tier: chaining + indirect-branch inline caches +
    /// dead-flag elision ([`Emu::step_trace`]).
    Trace,
    /// Fast tier: the trace-linked tier plus host-pointer memory
    /// caching, batched counter accounting and hook elision
    /// ([`Emu::step_fast`]). Counters and architectural state are
    /// bit-exact at every trace boundary (audited by the boundary-audit
    /// oracle), not at every instruction mid-trace.
    Fast,
}

impl ExecBackend {
    /// Parses a backend name
    /// (`"step"` / `"superblock"` / `"trace"` / `"fast"`).
    pub fn parse(s: &str) -> Option<ExecBackend> {
        match s {
            "step" => Some(ExecBackend::Step),
            "superblock" => Some(ExecBackend::Superblock),
            "trace" => Some(ExecBackend::Trace),
            "fast" => Some(ExecBackend::Fast),
            _ => None,
        }
    }
}

impl std::fmt::Display for ExecBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecBackend::Step => write!(f, "step"),
            ExecBackend::Superblock => write!(f, "superblock"),
            ExecBackend::Trace => write!(f, "trace"),
            ExecBackend::Fast => write!(f, "fast"),
        }
    }
}

impl<R: Runtime> Emu<R> {
    /// Decodes the run starting at `rip` into a cached block. In
    /// `mega` mode (the trace-linked tier) decoding continues across
    /// direct edges -- see the module docs; otherwise it stops at the
    /// first control transfer (the superblock tier). Returns `None`
    /// when even the first instruction cannot be fetched or decoded
    /// (the caller defers to [`Emu::step`] so the error is produced
    /// with exactly the interpreter's semantics).
    fn build_block(&mut self, trace: &mut TraceCache, rip: u64, mega: bool) -> Option<u32> {
        let cap = if mega { TRACE_CAP } else { SUPERBLOCK_CAP };
        let mut insts: Vec<TraceInst> = Vec::new();
        let mut kinds: Vec<Interior> = Vec::new();
        // Interior edge targets: dependency tracking (a trace decoding
        // from several segments must be severed when any of them is
        // invalidated).
        let mut targets: Vec<u64> = Vec::new();
        // Addresses already decoded into this trace: following an edge
        // to one would re-enter the trace mid-way, so it ends it
        // instead (loop closure chains the trace to itself).
        let mut visited: Vec<u64> = Vec::new();
        // Build-time return-address stack for inlined calls.
        let mut ret_stack: Vec<u64> = Vec::new();
        let mut addr = rip;
        let mut exit = BlockExit::Fall;
        let mut done = false;
        while !done && insts.len() < cap {
            let Ok(bytes) = self.vm.fetch(addr, 16) else {
                break;
            };
            let Ok((inst, len)) = decode_one(bytes, addr) else {
                break;
            };
            let next = addr + len as u64;
            visited.push(addr);
            insts.push(TraceInst {
                inst,
                rip: addr,
                next,
            });
            if !ends_block(inst.op) {
                kinds.push(Interior::None);
                addr = next;
                continue;
            }
            // Direct transfer: follow the edge in mega mode.
            let followed: Option<(Interior, u64)> = if !mega {
                None
            } else {
                match (inst.op, &inst.operands) {
                    (Op::Jmp, Operands::Rel(t)) if !visited.contains(t) => {
                        Some((Interior::Jmp { to: *t }, *t))
                    }
                    (Op::Call, Operands::Rel(t))
                        if !visited.contains(t) && ret_stack.len() < MAX_INLINE_DEPTH =>
                    {
                        ret_stack.push(next);
                        Some((Interior::Call { to: *t }, *t))
                    }
                    (Op::Jcc(c), Operands::Rel(t)) => {
                        // Backward-taken / forward-fall-through
                        // direction heuristic. No fallback to the
                        // other direction: when the predicted target
                        // is already in the trace (a loop-closing
                        // conditional), the trace ends there -- the
                        // unpredicted path is cold, and decoding it
                        // would grow a tail that every iteration
                        // side-exits around.
                        let (expect_taken, cand) = if *t <= addr {
                            (true, *t)
                        } else {
                            (false, next)
                        };
                        (!visited.contains(&cand)).then_some((
                            Interior::Jcc {
                                cond: c,
                                to: *t,
                                expect_taken,
                            },
                            cand,
                        ))
                    }
                    (Op::Ret, Operands::None) => match ret_stack.pop() {
                        Some(ra) if !visited.contains(&ra) => {
                            Some((Interior::Ret { expect: ra }, ra))
                        }
                        _ => None,
                    },
                    _ => None,
                }
            };
            match followed {
                Some((kind, target)) => {
                    kinds.push(kind);
                    targets.push(target);
                    addr = target;
                }
                None => {
                    kinds.push(Interior::None);
                    exit = exit_of(&inst);
                    done = true;
                }
            }
        }
        if insts.is_empty() {
            return None;
        }
        if !done {
            // Ended at the cap or at an unfetchable/undecodable follow
            // target: a trailing followed edge has no in-trace
            // continuation, so demote it back to the block terminal.
            if let (Some(k), Some(last)) = (kinds.last_mut(), insts.last()) {
                if !matches!(k, Interior::None) {
                    exit = exit_of(&last.inst);
                    *k = Interior::None;
                    targets.pop();
                }
            }
        }
        // Flag liveness over the whole trace; the terminal stays on
        // the slow path (its flag inputs -- Jcc -- are read inline, and
        // dead[last] is always false under the exit-conservative
        // rule). Interior transfers are conservative by construction:
        // `jcc` reads the flags, `call`/`ret` touch the stack (may
        // exit), and an interior `jmp` is infallible so flowing
        // liveness through it is exact.
        let flat: Vec<Inst> = insts.iter().map(|ti| ti.inst).collect();
        let dead = redfat_analysis::dead_flags_in_run(&flat);
        let body_len = match exit {
            BlockExit::Fall => insts.len(),
            _ => insts.len() - 1,
        };
        let mut sides: u16 = 0;
        let ops: Vec<FastOp> = insts[..body_len]
            .iter()
            .zip(&kinds)
            .enumerate()
            .map(|(i, (ti, kind))| match *kind {
                Interior::None => specialize(&ti.inst, ti.rip, ti.next, i as u8, dead[i]),
                Interior::Jmp { to } => FastOp::ChargeJmp { next: ti.next, to },
                Interior::Call { to } => FastOp::ChargeCall { next: ti.next, to },
                Interior::Jcc {
                    cond,
                    to,
                    expect_taken,
                } => {
                    let side = sides;
                    sides += 1;
                    FastOp::JccInline {
                        cond,
                        expect_taken,
                        next: ti.next,
                        to,
                        side,
                    }
                }
                Interior::Ret { expect } => {
                    let side = sides;
                    sides += 1;
                    FastOp::RetInline {
                        expect,
                        next: ti.next,
                        side,
                    }
                }
            })
            .collect();
        // Fuse adjacent compare + interior-branch pairs whose flags
        // die (within the trace) after the branch; the compare slot
        // becomes a `Nop` to keep op indices aligned with instruction
        // indices.
        let mut ops = ops;
        let live_after = redfat_analysis::flags_live_after_run(&flat);
        for i in 0..ops.len().saturating_sub(1) {
            let FastOp::JccInline {
                cond,
                expect_taken,
                next,
                to,
                side,
            } = ops[i + 1]
            else {
                continue;
            };
            if live_after[i + 1] {
                continue;
            }
            let fused = match ops[i] {
                FastOp::AluRR {
                    op: AluOp::Cmp,
                    w,
                    dst,
                    src,
                    ..
                } if fusable_cond(cond, false) => Some((w, dst, src, 0, false)),
                FastOp::AluRI {
                    op: AluOp::Cmp,
                    w,
                    dst,
                    imm,
                    ..
                } if fusable_cond(cond, false) => Some((w, dst, NO_REG, imm, false)),
                FastOp::TestRR { w, a, b } if fusable_cond(cond, true) => Some((w, a, b, 0, true)),
                FastOp::TestRI { w, a, imm } if fusable_cond(cond, true) => {
                    Some((w, a, NO_REG, imm, true))
                }
                _ => None,
            };
            if let Some((w, a, b, imm, test)) = fused {
                ops[i] = FastOp::Nop;
                ops[i + 1] = FastOp::CmpJcc {
                    w,
                    a,
                    b,
                    imm,
                    test,
                    cond,
                    expect_taken,
                    next,
                    to,
                    side,
                };
            }
        }
        let seg = match trace.seg_of(rip) {
            Some(s) => s,
            None => {
                let (base, size) = self.vm.segment_span(rip)?;
                trace.add_seg(base, size)
            }
        };
        let mut deps: Vec<(u32, u32)> = vec![(seg as u32, trace.segs[seg].version)];
        for &t in &targets {
            let s = match trace.seg_of(t) {
                Some(s) => s,
                None => {
                    let (base, size) = self.vm.segment_span(t)?;
                    trace.add_seg(base, size)
                }
            };
            if !deps.iter().any(|&(ds, _)| ds == s as u32) {
                deps.push((s as u32, trace.segs[s].version));
            }
        }
        Some(trace.insert(seg, rip, ops, insts, exit, sides as usize, deps, &self.cost))
    }

    /// One global-cache probe, building on miss. `None` means the first
    /// instruction at `rip` is unfetchable/undecodable; the caller
    /// defers to [`Emu::step`] for the exact error.
    fn lookup_or_build(&mut self, trace: &mut TraceCache, rip: u64, mega: bool) -> Option<u32> {
        if let Some(idx) = trace.lookup_idx(rip) {
            if trace.block_current(idx) {
                trace.stats.hits += 1;
                return Some(idx);
            }
            // A mega trace that starts in a live segment but decoded
            // across an edge into a since-invalidated one is still
            // reachable through its own segment's slot: sever it here
            // (the rebuild below overwrites the slot).
            trace.stats.links_severed += 1;
        }
        trace.stats.misses += 1;
        self.build_block(trace, rip, mega)
    }

    /// Executes up to `budget` instructions of the superblock at the
    /// current `rip` (one cache probe, then straight-line dispatch).
    ///
    /// Returns how many instructions were retired together with the
    /// step outcome, with *identical* per-instruction counter and error
    /// semantics to calling [`Emu::step`] that many times. A jump into
    /// the middle of an existing block simply starts a new block there;
    /// a `budget` smaller than the block executes a prefix and leaves
    /// `rip` mid-run, where the next call re-enters.
    pub fn step_block(&mut self, budget: u64) -> (u64, Result<Option<RunResult>, EmuError>) {
        if budget == 0 {
            return (0, Ok(None));
        }
        // Detach the cache so block borrows can coexist with `&mut
        // self` exec calls; `self.trace` is empty (and unused) for the
        // duration.
        let mut trace = std::mem::take(&mut self.trace);
        let out = self.step_block_inner(&mut trace, budget);
        self.trace = trace;
        out
    }

    fn step_block_inner(
        &mut self,
        trace: &mut TraceCache,
        budget: u64,
    ) -> (u64, Result<Option<RunResult>, EmuError>) {
        let rip = self.cpu.rip;
        let bidx = match self.lookup_or_build(trace, rip, false) {
            Some(b) => b,
            None => {
                // Unfetchable/undecodable first instruction: the step
                // interpreter owns the exact error behavior.
                let before = self.counters.instructions;
                let r = self.step();
                return (self.counters.instructions - before, r);
            }
        };
        let block = &trace.blocks[bidx as usize];
        let n = (block.insts.len() as u64).min(budget) as usize;
        // Charge the whole run up front (per-instruction state is
        // unobservable between the charge and the dispatch: hooks and
        // syscalls never read the counters mid-run) and roll the excess
        // back if an entry terminates or errors early -- the counters
        // then equal a per-instruction charge exactly.
        let per_inst = self.cost.base + self.cost.dbi_dispatch;
        self.counters.instructions += n as u64;
        self.counters.cycles += per_inst * n as u64;
        for (i, ti) in block.insts[..n].iter().enumerate() {
            // Fall-through before dispatch, exactly like `step()`:
            // faults and region-crossing accounting observe `next`.
            self.cpu.rip = ti.next;
            match self.exec(&ti.inst, ti.rip, ti.next) {
                Ok(None) => {
                    // Control left the recorded line (an interior
                    // conditional of a shared-cache trace went the
                    // other way): stop here, the next probe re-enters
                    // at the actual `rip`.
                    if i + 1 < n && self.cpu.rip != block.insts[i + 1].rip {
                        let unexecuted = (n - (i + 1)) as u64;
                        self.counters.instructions -= unexecuted;
                        self.counters.cycles -= per_inst * unexecuted;
                        return ((i + 1) as u64, Ok(None));
                    }
                }
                done => {
                    let unexecuted = (n - (i + 1)) as u64;
                    self.counters.instructions -= unexecuted;
                    self.counters.cycles -= per_inst * unexecuted;
                    return ((i + 1) as u64, done);
                }
            }
        }
        (n as u64, Ok(None))
    }

    /// Executes up to `budget` instructions on the trace-linked tier:
    /// one cache probe at entry, then block-to-block execution via
    /// direct links and indirect-branch inline caches until the budget
    /// runs out or a successor cannot be linked (unfetchable target --
    /// the next call's probe falls back to [`Emu::step`] for the exact
    /// error).
    ///
    /// Same contract as [`Emu::step_block`]: retired-count plus step
    /// outcome, with counter and error semantics identical to `step()`.
    pub fn step_trace(&mut self, budget: u64) -> (u64, Result<Option<RunResult>, EmuError>) {
        if budget == 0 {
            return (0, Ok(None));
        }
        let mut trace = std::mem::take(&mut self.trace);
        let out = self.step_trace_inner::<false>(&mut trace, budget);
        self.trace = trace;
        out
    }

    /// Executes up to `budget` instructions on the fast tier: the
    /// trace-linked machinery plus host-pointer memory caching, batched
    /// counter accounting and hook elision (module docs).
    ///
    /// Same contract as [`Emu::step_trace`] *at every return*:
    /// architectural state, `Counters` and error semantics are
    /// bit-identical to `step()` whenever this function hands control
    /// back (budget exhausted, fault, termination). Between entry and
    /// return, counters lead or lag `step()` by the batched remainder
    /// of the current block -- unobservable, because the tier only runs
    /// when no memory-access observer is attached: when
    /// [`Runtime::OBSERVES_MEMORY`] is `true` this transparently
    /// degrades to [`Emu::step_trace`] (full hook dispatch in access
    /// order).
    pub fn step_fast(&mut self, budget: u64) -> (u64, Result<Option<RunResult>, EmuError>) {
        if R::OBSERVES_MEMORY {
            return self.step_trace(budget);
        }
        if budget == 0 {
            return (0, Ok(None));
        }
        let mut trace = std::mem::take(&mut self.trace);
        let out = self.step_trace_inner::<true>(&mut trace, budget);
        self.trace = trace;
        out
    }

    /// One guest load from the body loop: host-pointer-cached in fast
    /// mode (hook elided, counters covered by the block's static
    /// charge), [`Emu::load_at_rip`] otherwise. Consumes one
    /// `mem_cache` slot in fast mode -- call sites must match
    /// [`uses_mem_slot`] in program order.
    #[inline(always)]
    fn load_fast<const FAST: bool>(
        &mut self,
        block: &TraceBlock,
        mslot: &mut usize,
        addr: u64,
        w: Width,
        rip: u64,
    ) -> Result<u64, EmuError> {
        if FAST {
            let slot = &block.mem_cache[*mslot];
            *mslot += 1;
            read_cached_w(&self.vm, addr, w, slot).map_err(|fault| EmuError::Fault { rip, fault })
        } else {
            self.load_at_rip(addr, w, rip)
        }
    }

    /// Store counterpart of [`Emu::load_fast`].
    #[inline(always)]
    fn store_fast<const FAST: bool>(
        &mut self,
        block: &TraceBlock,
        mslot: &mut usize,
        addr: u64,
        w: Width,
        v: u64,
        rip: u64,
    ) -> Result<(), EmuError> {
        if FAST {
            let slot = &block.mem_cache[*mslot];
            *mslot += 1;
            write_cached_w(&mut self.vm, addr, w, v, slot)
                .map_err(|fault| EmuError::Fault { rip, fault })
        } else {
            self.store_at_rip(addr, w, v, rip)
        }
    }

    /// Shared engine of the trace and fast tiers; `FAST` is resolved at
    /// monomorphization time, so each tier compiles to its own loop
    /// with no runtime mode checks.
    fn step_trace_inner<const FAST: bool>(
        &mut self,
        trace: &mut TraceCache,
        budget: u64,
    ) -> (u64, Result<Option<RunResult>, EmuError>) {
        let mut executed: u64 = 0;
        let per_inst = self.cost.base + self.cost.dbi_dispatch;

        let mut bidx = match self.lookup_or_build(trace, self.cpu.rip, true) {
            Some(b) => b,
            None => {
                let before = self.counters.instructions;
                let r = self.step();
                return (self.counters.instructions - before, r);
            }
        };
        loop {
            // ---- execute one block ----
            let block = &trace.blocks[bidx as usize];
            let n = block.insts.len();
            let exit = block.exit;
            let remaining = budget - executed;
            if remaining < n as u64 {
                // Budget-limited prefix: exact per-instruction
                // interpretation with elision disabled -- the flags
                // must be architecturally exact at the step-limit
                // boundary, exactly as `step()` would leave them.
                let pref = remaining as usize;
                for (i, ti) in block.insts[..pref].iter().enumerate() {
                    self.counters.instructions += 1;
                    self.counters.cycles += per_inst;
                    self.cpu.rip = ti.next;
                    executed += 1;
                    match self.exec(&ti.inst, ti.rip, ti.next) {
                        Ok(None) => {
                            // An interior conditional went against the
                            // recorded direction (or an inlined `ret`
                            // returned elsewhere): leave the trace, the
                            // next call re-probes at the actual `rip`.
                            if i + 1 < pref && self.cpu.rip != block.insts[i + 1].rip {
                                return (executed, Ok(None));
                            }
                        }
                        done => return (executed, done),
                    }
                }
                return (executed, Ok(None));
            }
            self.counters.instructions += n as u64;
            self.counters.cycles += per_inst * n as u64;
            // Fast tier: charge the whole block's predicted-path static
            // cost upfront in one shot (`charge` holds prefix sums over
            // `ops`; the last entry is the block total). Every early
            // exit below rolls the unexecuted suffix back, so counters
            // are bit-exact at every return boundary.
            let charge = &block.charge;
            let total = charge[block.ops.len()];
            if FAST {
                total.apply(&mut self.counters);
            }
            // Rolls back the upfront block charge to a per-instruction
            // charge and returns, after entry `$i` of an `$n`-entry
            // block ended the run early. In fast mode the batched
            // static charge is rolled back to prefix `$keep`: `$i`
            // when the exiting op's static charge must not stand (any
            // partial effects were recharged inline by the arm),
            // `$i + 1` when it stands in full (plain loads/stores:
            // `step()` prices memory before the access faults).
            macro_rules! bail {
                ($n:expr, $i:expr, $keep:expr, $res:expr) => {{
                    let unexecuted = ($n - ($i + 1)) as u64;
                    self.counters.instructions -= unexecuted;
                    self.counters.cycles -= per_inst * unexecuted;
                    if FAST {
                        total.minus(charge[$keep]).revert(&mut self.counters);
                    }
                    return (executed + $i as u64 + 1, $res);
                }};
            }
            // Next host-pointer cache slot; advanced by exactly the
            // ops `uses_mem_slot` claims, in program order.
            let mut mslot = 0usize;
            // Interior side exit taken: `op index << 16 | side-link
            // slot`, `u64::MAX` = none (packed: a plain register beats
            // an `Option` tuple in the dispatch loop's codegen).
            let mut side_exit: u64 = u64::MAX;
            'body: for (i, op) in block.ops.iter().enumerate() {
                match *op {
                    FastOp::Nop => {}
                    FastOp::MovRR { w64, dst, src } => {
                        let v = self.cpu.regs[src as usize];
                        self.cpu.regs[dst as usize] = if w64 { v } else { v & 0xFFFF_FFFF };
                    }
                    FastOp::MovRI { dst, imm } => self.cpu.regs[dst as usize] = imm,
                    FastOp::AluRR {
                        op,
                        w,
                        dst,
                        src,
                        flags,
                    } => {
                        let a = rd(&self.cpu.regs, dst, w);
                        let b = rd(&self.cpu.regs, src, w);
                        let r = if flags {
                            self.alu(op, w, a, b)
                        } else {
                            alu_value(op, w, a, b)
                        };
                        if op != AluOp::Cmp {
                            wr(&mut self.cpu.regs, dst, w, r);
                        }
                    }
                    FastOp::AluRI {
                        op,
                        w,
                        dst,
                        imm,
                        flags,
                    } => {
                        let a = rd(&self.cpu.regs, dst, w);
                        let r = if flags {
                            self.alu(op, w, a, imm)
                        } else {
                            alu_value(op, w, a, imm)
                        };
                        if op != AluOp::Cmp {
                            wr(&mut self.cpu.regs, dst, w, r);
                        }
                    }
                    FastOp::AluRM {
                        op,
                        w,
                        dst,
                        flags,
                        mem,
                        next,
                    } => {
                        let addr = ea_fast(&self.cpu.regs, &mem);
                        let b = match self.load_fast::<FAST>(block, &mut mslot, addr, w, next) {
                            Ok(v) => v,
                            Err(e) => {
                                self.cpu.rip = next;
                                bail!(n, i, i + 1, Err(e));
                            }
                        };
                        let a = rd(&self.cpu.regs, dst, w);
                        let r = if flags {
                            self.alu(op, w, a, b)
                        } else {
                            alu_value(op, w, a, b)
                        };
                        if op != AluOp::Cmp {
                            wr(&mut self.cpu.regs, dst, w, r);
                        }
                    }
                    FastOp::TestRR { w, a, b } => {
                        let r = rd(&self.cpu.regs, a, w) & rd(&self.cpu.regs, b, w);
                        self.logic_flags(w, r);
                    }
                    FastOp::TestRI { w, a, imm } => {
                        let r = rd(&self.cpu.regs, a, w) & imm;
                        self.logic_flags(w, r);
                    }
                    FastOp::Lea { w, dst, mem } => {
                        let a = ea_fast(&self.cpu.regs, &mem);
                        wr(&mut self.cpu.regs, dst, w, a);
                    }
                    FastOp::LoadRM { w, dst, mem, next } => {
                        let addr = ea_fast(&self.cpu.regs, &mem);
                        match self.load_fast::<FAST>(block, &mut mslot, addr, w, next) {
                            Ok(v) => wr(&mut self.cpu.regs, dst, w, v),
                            Err(e) => {
                                self.cpu.rip = next;
                                bail!(n, i, i + 1, Err(e));
                            }
                        }
                    }
                    FastOp::StoreMR { w, src, mem, next } => {
                        let addr = ea_fast(&self.cpu.regs, &mem);
                        let v = rd(&self.cpu.regs, src, w);
                        if let Err(e) = self.store_fast::<FAST>(block, &mut mslot, addr, w, v, next)
                        {
                            self.cpu.rip = next;
                            bail!(n, i, i + 1, Err(e));
                        }
                    }
                    FastOp::StoreMI { w, imm, mem, next } => {
                        let addr = ea_fast(&self.cpu.regs, &mem);
                        if let Err(e) =
                            self.store_fast::<FAST>(block, &mut mslot, addr, w, imm, next)
                        {
                            self.cpu.rip = next;
                            bail!(n, i, i + 1, Err(e));
                        }
                    }
                    FastOp::ExtRR { kind, dst, src } => {
                        let v = match kind {
                            ExtKind::Zx8 => self.cpu.regs[src as usize] & 0xFF,
                            ExtKind::Sx8 => self.cpu.regs[src as usize] as u8 as i8 as i64 as u64,
                            ExtKind::Sxd => self.cpu.regs[src as usize] as u32 as i32 as i64 as u64,
                        };
                        self.cpu.regs[dst as usize] = v;
                    }
                    FastOp::ExtRM {
                        kind,
                        dst,
                        mem,
                        next,
                    } => {
                        let addr = ea_fast(&self.cpu.regs, &mem);
                        let lw = match kind {
                            ExtKind::Zx8 | ExtKind::Sx8 => Width::W8,
                            ExtKind::Sxd => Width::W32,
                        };
                        match self.load_fast::<FAST>(block, &mut mslot, addr, lw, next) {
                            Ok(raw) => {
                                let v = match kind {
                                    ExtKind::Zx8 => raw,
                                    ExtKind::Sx8 => raw as u8 as i8 as i64 as u64,
                                    ExtKind::Sxd => raw as u32 as i32 as i64 as u64,
                                };
                                self.cpu.regs[dst as usize] = v;
                            }
                            Err(e) => {
                                self.cpu.rip = next;
                                bail!(n, i, i + 1, Err(e));
                            }
                        }
                    }
                    FastOp::SetccR { cond, dst } => {
                        let v = self.cpu.flags.cond(cond) as u64;
                        wr(&mut self.cpu.regs, dst, Width::W8, v);
                    }
                    FastOp::CmovRR { cond, w, dst, src } => {
                        if self.cpu.flags.cond(cond) {
                            let v = rd(&self.cpu.regs, src, w);
                            wr(&mut self.cpu.regs, dst, w, v);
                        } else if w == Width::W32 {
                            // cmov always writes the destination at
                            // 32-bit width (zero-extending) even when
                            // the move is suppressed.
                            let v = rd(&self.cpu.regs, dst, Width::W32);
                            wr(&mut self.cpu.regs, dst, Width::W32, v);
                        }
                    }
                    FastOp::ShiftRI {
                        op,
                        w,
                        dst,
                        count,
                        flags,
                    } => {
                        let a = rd(&self.cpu.regs, dst, w);
                        let r = if flags {
                            self.shift(op, w, a, count)
                        } else {
                            shift_value(op, w, a, count)
                        };
                        wr(&mut self.cpu.regs, dst, w, r);
                    }
                    FastOp::PushR { src, next } => {
                        // Source read before the `rsp` adjust (push of
                        // `rsp` pushes the pre-decrement value), and
                        // `rsp` adjusted before the store faults, both
                        // like `exec`'s `push64`.
                        let v = self.cpu.regs[src as usize];
                        let rsp = self.cpu.regs[RSP].wrapping_sub(8);
                        self.cpu.regs[RSP] = rsp;
                        if let Err(e) =
                            self.store_fast::<FAST>(block, &mut mslot, rsp, Width::W64, v, next)
                        {
                            self.cpu.rip = next;
                            bail!(n, i, i + 1, Err(e));
                        }
                    }
                    FastOp::PopR { dst, next } => {
                        let rsp = self.cpu.regs[RSP];
                        match self.load_fast::<FAST>(block, &mut mslot, rsp, Width::W64, next) {
                            Ok(v) => {
                                // Increment before the register write:
                                // `pop rsp` keeps the popped value.
                                self.cpu.regs[RSP] = rsp.wrapping_add(8);
                                self.cpu.regs[dst as usize] = v;
                            }
                            Err(e) => {
                                self.cpu.rip = next;
                                bail!(n, i, i + 1, Err(e));
                            }
                        }
                    }
                    FastOp::Cqo { w64 } => {
                        let rax = self.cpu.regs[0];
                        self.cpu.regs[2] = if w64 {
                            ((rax as i64) >> 63) as u64
                        } else {
                            (((rax as u32 as i32) >> 31) as u32) as u64
                        };
                    }
                    FastOp::Imul2RR { w, dst, src } => {
                        let a = rd(&self.cpu.regs, dst, w);
                        let b = rd(&self.cpu.regs, src, w);
                        let r = self.imul_flags(w, a, b);
                        wr(&mut self.cpu.regs, dst, w, r);
                        if !FAST {
                            self.counters.cycles += self.cost.mul;
                        }
                    }
                    FastOp::Imul2RM { w, dst, mem, next } => {
                        let addr = ea_fast(&self.cpu.regs, &mem);
                        let b = match self.load_fast::<FAST>(block, &mut mslot, addr, w, next) {
                            Ok(v) => v,
                            Err(e) => {
                                self.cpu.rip = next;
                                bail!(n, i, i + 1, Err(e));
                            }
                        };
                        let a = rd(&self.cpu.regs, dst, w);
                        let r = self.imul_flags(w, a, b);
                        wr(&mut self.cpu.regs, dst, w, r);
                        // Dynamic in both modes: `exec` prices the
                        // multiply only once the load has succeeded.
                        self.counters.cycles += self.cost.mul;
                    }
                    FastOp::Imul3RRI { w, dst, src, imm } => {
                        let b = rd(&self.cpu.regs, src, w);
                        let r = self.imul_flags(w, b, imm);
                        wr(&mut self.cpu.regs, dst, w, r);
                        if !FAST {
                            self.counters.cycles += self.cost.mul;
                        }
                    }
                    FastOp::MulDivR {
                        op,
                        w,
                        src,
                        rip,
                        next,
                    } => {
                        let v = rd(&self.cpu.regs, src, w);
                        if let Err(e) = self.muldiv(op, w, v, rip) {
                            self.cpu.rip = next;
                            bail!(n, i, i, Err(e));
                        }
                    }
                    FastOp::ChargeJmp { next, to } => {
                        // Interior direct jump: `transfer_to` minus the
                        // `rip` store (control stays in-trace). Fully
                        // covered by the static charge in fast mode.
                        if !FAST {
                            self.counters.transfers += 1;
                            self.counters.cycles += self.cost.transfer;
                            if in_tramp(next) != in_tramp(to) {
                                self.counters.region_crossings += 1;
                                self.counters.cycles += self.cost.cross_region;
                            }
                        }
                    }
                    FastOp::ChargeCall { next, to } => {
                        // Interior direct call: push the return address
                        // (rsp adjusted before the store faults, like
                        // `push64`), then transfer accounting.
                        let rsp = self.cpu.regs[RSP].wrapping_sub(8);
                        self.cpu.regs[RSP] = rsp;
                        if let Err(e) =
                            self.store_fast::<FAST>(block, &mut mslot, rsp, Width::W64, next, next)
                        {
                            // The push is priced before it faults
                            // (charge-before-access); the transfer
                            // never happens, so drop the whole static
                            // entry and recharge just the store.
                            if FAST {
                                self.counters.stores += 1;
                                self.counters.cycles += self.cost.mem;
                            }
                            self.cpu.rip = next;
                            bail!(n, i, i, Err(e));
                        }
                        if !FAST {
                            self.counters.transfers += 1;
                            self.counters.cycles += self.cost.transfer;
                            if in_tramp(next) != in_tramp(to) {
                                self.counters.region_crossings += 1;
                                self.counters.cycles += self.cost.cross_region;
                            }
                        }
                    }
                    FastOp::JccInline {
                        cond,
                        expect_taken,
                        next,
                        to,
                        side,
                    } => {
                        let taken = self.cpu.flags.cond(cond);
                        // Predicted-taken is statically charged; on a
                        // mispredict the side-exit rollback drops this
                        // op's static entry, so the actual outcome is
                        // always accounted exactly once.
                        if taken && (!FAST || !expect_taken) {
                            self.counters.taken_branches += 1;
                            self.counters.cycles += self.cost.branch_taken;
                            if in_tramp(next) != in_tramp(to) {
                                self.counters.region_crossings += 1;
                                self.counters.cycles += self.cost.cross_region;
                            }
                        }
                        if taken != expect_taken {
                            self.cpu.rip = if taken { to } else { next };
                            side_exit = ((i as u64) << 16) | side as u64;
                            break 'body;
                        }
                    }
                    FastOp::CmpJcc {
                        w,
                        a,
                        b,
                        imm,
                        test,
                        cond,
                        expect_taken,
                        next,
                        to,
                        side,
                    } => {
                        let av = rd(&self.cpu.regs, a, w);
                        let bv = if b == NO_REG {
                            imm
                        } else {
                            rd(&self.cpu.regs, b, w)
                        };
                        let taken = if test {
                            test_cond(cond, w, av & bv)
                        } else {
                            cmp_cond(cond, w, av, bv)
                        };
                        if taken && (!FAST || !expect_taken) {
                            self.counters.taken_branches += 1;
                            self.counters.cycles += self.cost.branch_taken;
                            if in_tramp(next) != in_tramp(to) {
                                self.counters.region_crossings += 1;
                                self.counters.cycles += self.cost.cross_region;
                            }
                        }
                        if taken != expect_taken {
                            // Leaving the trace: the compare's flags
                            // become observable, materialize them
                            // exactly (the operand registers are
                            // untouched between the fused pair).
                            if test {
                                self.logic_flags(w, av & bv);
                            } else {
                                self.alu(AluOp::Cmp, w, av, bv);
                            }
                            self.cpu.rip = if taken { to } else { next };
                            side_exit = ((i as u64) << 16) | side as u64;
                            break 'body;
                        }
                    }
                    FastOp::RetInline { expect, next, side } => {
                        // Inline `pop64` + `transfer_to` accounting;
                        // control stays in-trace only when the popped
                        // return address matches the build-time
                        // prediction.
                        let rsp = self.cpu.regs[RSP];
                        match self.load_fast::<FAST>(block, &mut mslot, rsp, Width::W64, next) {
                            Ok(t) => {
                                self.cpu.regs[RSP] = rsp.wrapping_add(8);
                                // A predicted return is fully covered
                                // by the static charge (its crossing
                                // was computed against `expect ==
                                // t`). A mispredict loses its static
                                // entry to the side-exit rollback, so
                                // recharge everything against the
                                // actual target.
                                if !FAST || t != expect {
                                    if FAST {
                                        self.counters.loads += 1;
                                        self.counters.cycles += self.cost.mem;
                                    }
                                    self.counters.transfers += 1;
                                    self.counters.cycles += self.cost.transfer;
                                    if in_tramp(next) != in_tramp(t) {
                                        self.counters.region_crossings += 1;
                                        self.counters.cycles += self.cost.cross_region;
                                    }
                                }
                                if t != expect {
                                    self.cpu.rip = t;
                                    side_exit = ((i as u64) << 16) | side as u64;
                                    break 'body;
                                }
                            }
                            Err(e) => {
                                // `step()` prices the pop before it
                                // faults; the transfer never happens.
                                if FAST {
                                    self.counters.loads += 1;
                                    self.counters.cycles += self.cost.mem;
                                }
                                self.cpu.rip = next;
                                bail!(n, i, i, Err(e));
                            }
                        }
                    }
                    FastOp::SlowElide { idx } => {
                        let ti = &block.insts[idx as usize];
                        self.cpu.rip = ti.next;
                        self.noflags = true;
                        let r = self.exec(&ti.inst, ti.rip, ti.next);
                        self.noflags = false;
                        match r {
                            Ok(None) => {}
                            done => bail!(n, i, i, done),
                        }
                    }
                    FastOp::Slow { idx } => {
                        let ti = &block.insts[idx as usize];
                        self.cpu.rip = ti.next;
                        match self.exec(&ti.inst, ti.rip, ti.next) {
                            Ok(None) => {}
                            done => bail!(n, i, i, done),
                        }
                    }
                }
            }
            if side_exit != u64::MAX {
                let (i, side) = ((side_exit >> 16) as usize, (side_exit & 0xFFFF) as u16);
                // ---- interior side exit: rollback + side link ----
                // `rip` was set by the exiting op; roll the unexecuted
                // tail of the upfront charge back, then chain through
                // the per-site side link. Side links validate the
                // successor's start address: a `ret` side exit is
                // data-dependent, so a patched link may be for a
                // different target.
                let unexecuted = (n - (i + 1)) as u64;
                self.counters.instructions -= unexecuted;
                self.counters.cycles -= per_inst * unexecuted;
                if FAST {
                    // Keep the static prefix up to (but excluding) the
                    // exiting op: its actual outcome differed from the
                    // prediction and was accounted dynamically inline.
                    total.minus(charge[i]).revert(&mut self.counters);
                }
                executed += (i + 1) as u64;
                if executed >= budget {
                    return (executed, Ok(None));
                }
                let target = self.cpu.rip;
                let slot = trace.blocks[bidx as usize].side_links[side as usize];
                bidx = if slot != NO_LINK
                    && trace.block_current(slot)
                    && trace.blocks[slot as usize].start == target
                {
                    trace.stats.chain_follows += 1;
                    slot
                } else {
                    if slot != NO_LINK {
                        // Stale (invalidated) or retargeted link.
                        trace.stats.links_severed += 1;
                    }
                    match self.lookup_or_build(trace, target, true) {
                        Some(idx) => {
                            trace.blocks[bidx as usize].side_links[side as usize] = idx;
                            idx
                        }
                        None => return (executed, Ok(None)),
                    }
                };
                continue;
            }
            // ---- terminal: replicate `exec`'s transfer accounting ----
            let mut use_taken = true;
            match exit {
                BlockExit::Fall => {
                    self.cpu.rip = block.insts[n - 1].next;
                    use_taken = false;
                }
                BlockExit::Jmp { to } => {
                    let next = block.insts[n - 1].next;
                    self.counters.transfers += 1;
                    self.counters.cycles += self.cost.transfer;
                    if in_tramp(next) != in_tramp(to) {
                        self.counters.region_crossings += 1;
                        self.counters.cycles += self.cost.cross_region;
                    }
                    self.cpu.rip = to;
                }
                BlockExit::Jcc { cond, to } => {
                    let next = block.insts[n - 1].next;
                    if self.cpu.flags.cond(cond) {
                        self.counters.taken_branches += 1;
                        self.counters.cycles += self.cost.branch_taken;
                        if in_tramp(next) != in_tramp(to) {
                            self.counters.region_crossings += 1;
                            self.counters.cycles += self.cost.cross_region;
                        }
                        self.cpu.rip = to;
                    } else {
                        self.cpu.rip = next;
                        use_taken = false;
                    }
                }
                BlockExit::Call { to } => {
                    let next = block.insts[n - 1].next;
                    // rip = fall-through before the push, like step():
                    // a stack fault reports the post-increment rip.
                    self.cpu.rip = next;
                    if let Err(e) = self.push64(next) {
                        return (executed + n as u64, Err(e));
                    }
                    self.counters.transfers += 1;
                    self.counters.cycles += self.cost.transfer;
                    if in_tramp(next) != in_tramp(to) {
                        self.counters.region_crossings += 1;
                        self.counters.cycles += self.cost.cross_region;
                    }
                    self.cpu.rip = to;
                }
                BlockExit::Ret => {
                    let next = block.insts[n - 1].next;
                    // Inline `pop64` + `transfer_to`, with the fault
                    // rip (= fall-through) passed explicitly; `rsp` is
                    // only bumped once the load succeeds, like `pop64`.
                    let rsp = self.cpu.regs[RSP];
                    match self.load_at_rip(rsp, Width::W64, next) {
                        Ok(t) => {
                            self.cpu.regs[RSP] = rsp.wrapping_add(8);
                            self.counters.transfers += 1;
                            self.counters.cycles += self.cost.transfer;
                            if in_tramp(next) != in_tramp(t) {
                                self.counters.region_crossings += 1;
                                self.counters.cycles += self.cost.cross_region;
                            }
                            self.cpu.rip = t;
                        }
                        Err(e) => {
                            self.cpu.rip = next;
                            return (executed + n as u64, Err(e));
                        }
                    }
                }
                BlockExit::JmpIndR { src } => {
                    let next = block.insts[n - 1].next;
                    let t = self.cpu.regs[src as usize];
                    self.counters.transfers += 1;
                    self.counters.cycles += self.cost.transfer;
                    if in_tramp(next) != in_tramp(t) {
                        self.counters.region_crossings += 1;
                        self.counters.cycles += self.cost.cross_region;
                    }
                    self.cpu.rip = t;
                }
                BlockExit::CallIndR { src } => {
                    let next = block.insts[n - 1].next;
                    // Target read before the push, like `exec` (the
                    // push may clobber `rsp`-relative sources only
                    // after the read).
                    let t = self.cpu.regs[src as usize];
                    self.cpu.rip = next;
                    if let Err(e) = self.push64(next) {
                        return (executed + n as u64, Err(e));
                    }
                    self.counters.transfers += 1;
                    self.counters.cycles += self.cost.transfer;
                    if in_tramp(next) != in_tramp(t) {
                        self.counters.region_crossings += 1;
                        self.counters.cycles += self.cost.cross_region;
                    }
                    self.cpu.rip = t;
                }
                BlockExit::Indirect | BlockExit::Other => {
                    let ti = &block.insts[n - 1];
                    self.cpu.rip = ti.next;
                    match self.exec(&ti.inst, ti.rip, ti.next) {
                        Ok(None) => {}
                        done => return (executed + n as u64, done),
                    }
                }
            }
            executed += n as u64;
            if executed >= budget {
                return (executed, Ok(None));
            }
            // ---- resolve the successor: links / IC / probe ----
            let target = self.cpu.rip;
            bidx = if exit.is_indirect() {
                let ic = trace.blocks[bidx as usize].ic;
                let mut hit = None;
                for (way, &(t, idx)) in ic.iter().enumerate() {
                    if idx != NO_LINK && t == target {
                        if trace.block_current(idx) {
                            hit = Some((way, idx));
                        } else {
                            trace.blocks[bidx as usize].ic[way] = (0, NO_LINK);
                            trace.stats.links_severed += 1;
                        }
                        break;
                    }
                }
                match hit {
                    Some((way, idx)) => {
                        trace.stats.ic_hits += 1;
                        if way != 0 {
                            trace.blocks[bidx as usize].ic.swap(0, way);
                        }
                        idx
                    }
                    None => {
                        trace.stats.ic_misses += 1;
                        match self.lookup_or_build(trace, target, true) {
                            Some(idx) => {
                                let b = &mut trace.blocks[bidx as usize];
                                for k in (1..IC_WAYS).rev() {
                                    b.ic[k] = b.ic[k - 1];
                                }
                                b.ic[0] = (target, idx);
                                idx
                            }
                            None => return (executed, Ok(None)),
                        }
                    }
                }
            } else {
                let slot = {
                    let b = &trace.blocks[bidx as usize];
                    if use_taken {
                        b.link_taken
                    } else {
                        b.link_fall
                    }
                };
                if slot != NO_LINK && trace.block_current(slot) {
                    trace.stats.chain_follows += 1;
                    slot
                } else {
                    if slot != NO_LINK {
                        // Stale link (segment invalidated): sever.
                        trace.stats.links_severed += 1;
                    }
                    let linked = self.lookup_or_build(trace, target, true);
                    let b = &mut trace.blocks[bidx as usize];
                    let slot = if use_taken {
                        &mut b.link_taken
                    } else {
                        &mut b.link_fall
                    };
                    *slot = linked.unwrap_or(NO_LINK);
                    match linked {
                        Some(idx) => idx,
                        None => return (executed, Ok(None)),
                    }
                }
            };
        }
    }

    /// Invalidates translated code containing `addr` in both the block
    /// cache (version bump: severs stale chain links and IC entries
    /// lazily) and the per-instruction icache. Returns whether any
    /// cached code was dropped. Models self-modifying / reloaded code.
    pub fn invalidate_code(&mut self, addr: u64) -> bool {
        let t = self.trace.invalidate_addr(addr);
        let i = self.icache_invalidate(addr);
        t || i
    }

    /// Cache-maintenance counters for the translated backends.
    pub fn trace_stats(&self) -> TraceStats {
        self.trace.stats
    }

    /// Runs until exit, error or `max_steps` instructions using the
    /// superblock backend. Behaviorally identical to [`Emu::run`]
    /// (result, counters, guest-visible state), just faster.
    pub fn run_superblock(&mut self, max_steps: u64) -> RunResult {
        let mut remaining = max_steps;
        while remaining > 0 {
            let (executed, outcome) = self.step_block(remaining);
            remaining -= executed.min(remaining);
            match outcome {
                Ok(None) => {}
                Ok(Some(result)) => return result,
                Err(EmuError::AccessVetoed { error, .. }) => return RunResult::MemoryError(error),
                Err(e) => return RunResult::Error(e),
            }
        }
        RunResult::StepLimit
    }

    /// Runs until exit, error or `max_steps` instructions using the
    /// trace-linked backend. Behaviorally identical to [`Emu::run`]
    /// (result, counters, guest-visible state), just faster still.
    pub fn run_trace(&mut self, max_steps: u64) -> RunResult {
        let mut remaining = max_steps;
        while remaining > 0 {
            let (executed, outcome) = self.step_trace(remaining);
            remaining -= executed.min(remaining);
            match outcome {
                Ok(None) => {}
                Ok(Some(result)) => return result,
                Err(EmuError::AccessVetoed { error, .. }) => return RunResult::MemoryError(error),
                Err(e) => return RunResult::Error(e),
            }
        }
        RunResult::StepLimit
    }

    /// Runs until exit, error or `max_steps` instructions using the
    /// fast backend. Behaviorally identical to [`Emu::run`] (result,
    /// counters, guest-visible state), fastest of the four tiers.
    pub fn run_fast(&mut self, max_steps: u64) -> RunResult {
        let mut remaining = max_steps;
        while remaining > 0 {
            let (executed, outcome) = self.step_fast(remaining);
            remaining -= executed.min(remaining);
            match outcome {
                Ok(None) => {}
                Ok(Some(result)) => return result,
                Err(EmuError::AccessVetoed { error, .. }) => return RunResult::MemoryError(error),
                Err(e) => return RunResult::Error(e),
            }
        }
        RunResult::StepLimit
    }

    /// Runs with the selected backend (see [`ExecBackend`]).
    pub fn run_backend(&mut self, backend: ExecBackend, max_steps: u64) -> RunResult {
        match backend {
            ExecBackend::Step => self.run(max_steps),
            ExecBackend::Superblock => self.run_superblock(max_steps),
            ExecBackend::Trace => self.run_trace(max_steps),
            ExecBackend::Fast => self.run_fast(max_steps),
        }
    }
}
