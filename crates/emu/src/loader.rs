//! Image loading: ELF segments → guest address space, stack setup, and
//! trap-table discovery.
//!
//! Loading is the first stage that commits resources to an untrusted
//! image, so everything is validated *before* the first mapping: a
//! malformed image yields a structured [`LoadError`] naming the offending
//! segment, never a panic or an abort from the [`Vm`]'s mapping asserts.

use crate::exec::{Emu, TRAP_TABLE_MAGIC};
use crate::runtime::Runtime;
use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_vm::{layout, Prot, Vm};
use redfat_x86::{Asm, AsmError};

/// Upper bound on the total bytes of segment memory one address space
/// will back. Well-formed workloads stay far below this; the cap exists
/// so a corrupt `p_memsz` cannot make the loader allocate the declared
/// size on the host before any guest code runs.
pub const MAX_LOAD_BYTES: u64 = 256 << 20;

/// A structured image-loading failure.
///
/// Every variant carries the guest address that identifies the offending
/// segment, so corrupt inputs are diagnosable without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// `load_images` was called with an empty image list.
    NoImages,
    /// A segment's address range wraps the 64-bit address space.
    SegmentWraps {
        /// Segment virtual address.
        vaddr: u64,
        /// Declared in-memory size.
        mem_size: u64,
    },
    /// Total segment memory exceeds [`MAX_LOAD_BYTES`].
    ImageTooLarge {
        /// Virtual address of the segment that crossed the budget.
        vaddr: u64,
        /// Total bytes requested up to and including that segment.
        requested: u64,
    },
    /// Two segments overlap in the guest address space.
    SegmentOverlap {
        /// Virtual address of the later-sorted segment.
        vaddr: u64,
        /// Virtual address of the segment it collides with.
        other: u64,
    },
    /// A segment collides with an address range the runtime reserves
    /// (guest stack, libredfat tables, or the low-fat heap regions).
    ReservedCollision {
        /// Segment virtual address.
        vaddr: u64,
        /// Name of the reserved range.
        reserved: &'static str,
    },
    /// A trap-table segment declares more entries than its data holds.
    TruncatedTrapTable {
        /// Virtual address of the trap-table segment.
        segment: u64,
        /// Entry count declared in the table header.
        declared: u64,
        /// Entries actually backed by segment data.
        available: u64,
    },
    /// Assembling a runtime stub image failed (see [`stub_image`]).
    Asm(AsmError),
}

impl From<AsmError> for LoadError {
    fn from(e: AsmError) -> LoadError {
        LoadError::Asm(e)
    }
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::NoImages => write!(f, "no images to load"),
            LoadError::SegmentWraps { vaddr, mem_size } => {
                write!(
                    f,
                    "segment at {vaddr:#x} (size {mem_size:#x}) wraps the address space"
                )
            }
            LoadError::ImageTooLarge { vaddr, requested } => {
                write!(
                    f,
                    "segment at {vaddr:#x} pushes total load size to {requested} bytes \
                     (limit {MAX_LOAD_BYTES})"
                )
            }
            LoadError::SegmentOverlap { vaddr, other } => {
                write!(f, "segment at {vaddr:#x} overlaps segment at {other:#x}")
            }
            LoadError::ReservedCollision { vaddr, reserved } => {
                write!(
                    f,
                    "segment at {vaddr:#x} collides with the reserved {reserved} range"
                )
            }
            LoadError::TruncatedTrapTable {
                segment,
                declared,
                available,
            } => {
                write!(
                    f,
                    "trap table at {segment:#x} declares {declared} entries \
                     but has data for {available}"
                )
            }
            LoadError::Asm(e) => write!(f, "stub image assembly failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Guest address ranges the runtime maps after the image segments; an
/// image segment inside any of them would make stack setup or the
/// allocator's table installation fault.
const RESERVED: [(u64, u64, &str); 3] = [
    (
        layout::STACK_TOP - layout::STACK_SIZE,
        layout::STACK_TOP,
        "stack",
    ),
    (
        layout::RUNTIME_BASE,
        layout::SCRATCH_BASE + layout::SCRATCH_SIZE,
        "libredfat runtime",
    ),
    (layout::heap_start(), layout::heap_end(), "low-fat heap"),
];

impl<R: Runtime> Emu<R> {
    /// Loads an ELF image into a fresh address space and prepares a guest
    /// ready to run: segments mapped with their declared protections, the
    /// stack mapped, `rsp`/`rip` initialized, the runtime's `on_load`
    /// hook fired (installing allocator tables), and any rewriter trap
    /// table registered.
    pub fn load_image(image: &Image, runtime: R) -> Result<Emu<R>, LoadError> {
        Self::load_images(&[image], runtime)
    }

    /// Loads several images into one address space (e.g. a main program
    /// plus separately (un)hardened libraries, paper §7.4). Execution
    /// starts at the first image's entry point; trap tables of every
    /// image are registered.
    pub fn load_images(images: &[&Image], mut runtime: R) -> Result<Emu<R>, LoadError> {
        let image = images.first().ok_or(LoadError::NoImages)?;

        // Validate every segment before the first mapping, so a corrupt
        // image cannot trip the Vm's overlap/wrap asserts or commit host
        // memory for an absurd declared size. Zero-size segments are
        // skipped (nothing to map).
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut total = 0u64;
        for seg in images.iter().flat_map(|img| &img.segments) {
            let size = seg.mem_size.max(seg.data.len() as u64);
            if size == 0 {
                continue;
            }
            let end = seg.vaddr.checked_add(size).ok_or(LoadError::SegmentWraps {
                vaddr: seg.vaddr,
                mem_size: size,
            })?;
            total = total.saturating_add(size);
            if total > MAX_LOAD_BYTES {
                return Err(LoadError::ImageTooLarge {
                    vaddr: seg.vaddr,
                    requested: total,
                });
            }
            for &(lo, hi, name) in &RESERVED {
                if seg.vaddr < hi && end > lo {
                    return Err(LoadError::ReservedCollision {
                        vaddr: seg.vaddr,
                        reserved: name,
                    });
                }
            }
            spans.push((seg.vaddr, end));
        }
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(LoadError::SegmentOverlap {
                    vaddr: w[1].0,
                    other: w[0].0,
                });
            }
        }

        // Trap tables are parsed up front too: data segments beginning
        // with the magic quadword, then a count, then (addr, target)
        // pairs. Every field is read through a bounds-checked helper:
        // a declared count the data cannot back -- including one that
        // truncates mid-entry -- is a load error naming the segment,
        // never a wild slice or a panic.
        let mut traps: Vec<(u64, u64)> = Vec::new();
        for seg in images.iter().flat_map(|img| &img.segments) {
            if seg.data.len() < 16 {
                continue;
            }
            let Some(magic) = read_u64_le(&seg.data, 0) else {
                continue;
            };
            if magic != TRAP_TABLE_MAGIC {
                continue;
            }
            let available = (seg.data.len() as u64 - 16) / 16;
            let truncated = |declared| LoadError::TruncatedTrapTable {
                segment: seg.vaddr,
                declared,
                available,
            };
            let declared = read_u64_le(&seg.data, 8).ok_or_else(|| truncated(0))?;
            if declared > available {
                return Err(truncated(declared));
            }
            for i in 0..declared as usize {
                let off = 16 + i * 16;
                let addr = read_u64_le(&seg.data, off).ok_or_else(|| truncated(declared))?;
                let target = read_u64_le(&seg.data, off + 8).ok_or_else(|| truncated(declared))?;
                traps.push((addr, target));
            }
        }

        let mut vm = Vm::new();
        for (n, image) in images.iter().enumerate() {
            for (i, seg) in image.segments.iter().enumerate() {
                if seg.mem_size.max(seg.data.len() as u64) == 0 {
                    continue;
                }
                let mut prot = Prot(0);
                if seg.flags.readable() {
                    prot = prot | Prot::R;
                }
                if seg.flags.writable() {
                    prot = prot | Prot::W;
                }
                if seg.flags.executable() {
                    prot = prot | Prot::X;
                }
                vm.map_with_data(
                    seg.vaddr,
                    seg.mem_size,
                    prot,
                    &format!("img{n}.seg{i}"),
                    &seg.data,
                );
            }
        }
        vm.map(
            layout::STACK_TOP - layout::STACK_SIZE,
            layout::STACK_SIZE,
            Prot::RW,
            "stack",
        );
        runtime.on_load(&mut vm);

        let mut emu = Emu::new(vm, runtime);
        emu.cpu.rip = image.entry;
        // 16-byte aligned stack with a small headroom; the sentinel return
        // address 0 is never popped because entry code ends in `exit`.
        emu.cpu.set(redfat_x86::Reg::Rsp, layout::STACK_TOP - 64);
        for (addr, target) in traps {
            emu.add_trap(addr, target);
        }
        Ok(emu)
    }
}

/// Reads the little-endian `u64` at byte offset `off`, or `None` when
/// the slice ends mid-field. All trap-table field reads go through
/// this so a truncated segment surfaces as a structured error at the
/// caller, never an out-of-bounds slice panic.
fn read_u64_le(data: &[u8], off: usize) -> Option<u64> {
    let bytes = data.get(off..off.checked_add(8)?)?;
    bytes.try_into().ok().map(u64::from_le_bytes)
}

/// Assembles a single-segment executable stub image at `base`: entry at
/// the first instruction, one `RX` segment holding the assembled bytes.
/// This is how runtime stubs and test fixtures become loadable
/// [`Image`]s; an assembly failure (unbound label, encoding overflow)
/// surfaces as [`LoadError::Asm`] instead of a panic, so a bad stub
/// degrades like any other malformed input.
pub fn stub_image(base: u64, build: impl FnOnce(&mut Asm)) -> Result<Image, LoadError> {
    let mut a = Asm::new(base);
    build(&mut a);
    let p = a.finish()?;
    Ok(Image {
        kind: ImageKind::Exec,
        entry: p.base,
        segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
        symbols: vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::{stub_image, LoadError};
    use crate::runtime::{ErrorMode, HostRuntime};
    use crate::{Emu, RunResult};
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_vm::layout;
    use redfat_x86::{Asm, Reg, Width};

    /// Builds a tiny image from assembled code at CODE_BASE.
    fn image_of(build: impl FnOnce(&mut Asm)) -> Image {
        stub_image(layout::CODE_BASE, build).expect("assembles")
    }

    fn exit_with(a: &mut Asm, reg_holding_code: Reg) {
        if reg_holding_code != Reg::Rdi {
            a.mov_rr(Width::W64, Reg::Rdi, reg_holding_code);
        }
        a.mov_ri(Width::W64, Reg::Rax, crate::runtime::syscalls::EXIT as i64);
        a.syscall();
    }

    #[test]
    fn loads_and_exits() {
        let img = image_of(|a| {
            a.mov_ri(Width::W64, Reg::Rbx, 42);
            exit_with(a, Reg::Rbx);
        });
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        assert_eq!(emu.run(1000), RunResult::Exited(42));
        assert!(emu.counters.instructions >= 3);
        assert!(emu.counters.cycles > emu.counters.instructions);
    }

    #[test]
    fn stack_is_usable() {
        let img = image_of(|a| {
            a.mov_ri(Width::W64, Reg::Rcx, 7);
            a.push_r(Reg::Rcx);
            a.pop_r(Reg::Rdi);
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
        });
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        assert_eq!(emu.run(1000), RunResult::Exited(7));
    }

    #[test]
    fn malloc_returns_heap_pointer() {
        let img = image_of(|a| {
            a.mov_ri(Width::W64, Reg::Rdi, 100);
            a.mov_ri(
                Width::W64,
                Reg::Rax,
                crate::runtime::syscalls::MALLOC as i64,
            );
            a.syscall();
            // Store and reload through the pointer.
            a.mov_ri(Width::W64, Reg::Rcx, 123);
            a.mov_mr(Width::W64, redfat_x86::Mem::base(Reg::Rax), Reg::Rcx);
            a.mov_rm(Width::W64, Reg::Rdi, redfat_x86::Mem::base(Reg::Rax));
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
        });
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        assert_eq!(emu.run(1000), RunResult::Exited(123));
    }

    #[test]
    fn trap_table_dispatches_int3() {
        // Code: int3 at a known address; trampoline sets rdi=9 and exits.
        let mut code = Asm::new(layout::CODE_BASE);
        code.int3();
        // Unreachable fallthrough.
        code.ud2();
        let code_p = code.finish().unwrap();

        let mut tramp = Asm::new(layout::TRAMPOLINE_BASE);
        tramp.mov_ri(Width::W64, Reg::Rdi, 9);
        tramp.mov_ri(Width::W64, Reg::Rax, 0);
        tramp.syscall();
        let tramp_p = tramp.finish().unwrap();

        let mut table = Vec::new();
        table.extend_from_slice(&crate::TRAP_TABLE_MAGIC.to_le_bytes());
        table.extend_from_slice(&1u64.to_le_bytes());
        table.extend_from_slice(&layout::CODE_BASE.to_le_bytes());
        table.extend_from_slice(&layout::TRAMPOLINE_BASE.to_le_bytes());

        let img = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(code_p.base, SegFlags::RX, code_p.bytes),
                Segment::new(tramp_p.base, SegFlags::RX, tramp_p.bytes),
                Segment::new(layout::GLOBALS_BASE, SegFlags::R, table),
            ],
            symbols: vec![],
        };
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        assert_eq!(emu.run(100), RunResult::Exited(9));
        assert_eq!(emu.counters.int3_traps, 1);
    }

    #[test]
    fn stray_int3_is_an_error() {
        let img = image_of(|a| a.int3());
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
        assert!(matches!(
            emu.run(10),
            RunResult::Error(crate::EmuError::UnhandledInt3 { .. })
        ));
    }

    #[test]
    fn empty_image_list_is_an_error() {
        let err = Emu::load_images(&[], HostRuntime::new(ErrorMode::Abort))
            .err()
            .expect("must not load");
        assert_eq!(err, LoadError::NoImages);
    }

    #[test]
    fn truncated_trap_table_is_an_error() {
        // Declares 100 entries but carries data for exactly one.
        let mut table = Vec::new();
        table.extend_from_slice(&crate::TRAP_TABLE_MAGIC.to_le_bytes());
        table.extend_from_slice(&100u64.to_le_bytes());
        table.extend_from_slice(&layout::CODE_BASE.to_le_bytes());
        table.extend_from_slice(&layout::TRAMPOLINE_BASE.to_le_bytes());
        let img = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(layout::CODE_BASE, SegFlags::RX, vec![0xC3]),
                Segment::new(layout::GLOBALS_BASE, SegFlags::R, table),
            ],
            symbols: vec![],
        };
        let err = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort))
            .err()
            .expect("must not load");
        assert_eq!(
            err,
            LoadError::TruncatedTrapTable {
                segment: layout::GLOBALS_BASE,
                declared: 100,
                available: 1,
            }
        );
    }

    #[test]
    fn overlapping_segments_are_an_error() {
        let img = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(layout::CODE_BASE, SegFlags::RX, vec![0x90; 64]),
                Segment::new(layout::CODE_BASE + 32, SegFlags::RW, vec![0; 64]),
            ],
            symbols: vec![],
        };
        let err = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort))
            .err()
            .expect("must not load");
        assert_eq!(
            err,
            LoadError::SegmentOverlap {
                vaddr: layout::CODE_BASE + 32,
                other: layout::CODE_BASE,
            }
        );
    }

    #[test]
    fn segment_into_reserved_stack_is_an_error() {
        let img = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(layout::CODE_BASE, SegFlags::RX, vec![0xC3]),
                Segment::new(layout::STACK_TOP - 4096, SegFlags::RW, vec![0; 32]),
            ],
            symbols: vec![],
        };
        let err = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort))
            .err()
            .expect("must not load");
        assert!(matches!(
            err,
            LoadError::ReservedCollision {
                reserved: "stack",
                ..
            }
        ));
    }

    #[test]
    fn wrapping_and_oversized_segments_are_errors() {
        let wrap = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![Segment {
                vaddr: u64::MAX - 8,
                flags: SegFlags::RW,
                data: vec![],
                mem_size: 64,
            }],
            symbols: vec![],
        };
        assert!(matches!(
            Emu::load_image(&wrap, HostRuntime::new(ErrorMode::Abort))
                .err()
                .expect("must not load"),
            LoadError::SegmentWraps { .. }
        ));

        let huge = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![Segment {
                vaddr: layout::CODE_BASE,
                flags: SegFlags::RW,
                data: vec![],
                mem_size: u64::MAX / 2,
            }],
            symbols: vec![],
        };
        assert!(matches!(
            Emu::load_image(&huge, HostRuntime::new(ErrorMode::Abort))
                .err()
                .expect("must not load"),
            LoadError::ImageTooLarge { .. }
        ));
    }

    #[test]
    fn mid_entry_truncated_trap_table_is_an_error() {
        // Header intact, declared count intact, but the single declared
        // entry's data stops 8 bytes short: the checked reads must
        // surface TruncatedTrapTable, not panic on a slice conversion.
        let mut table = Vec::new();
        table.extend_from_slice(&crate::TRAP_TABLE_MAGIC.to_le_bytes());
        table.extend_from_slice(&1u64.to_le_bytes());
        table.extend_from_slice(&layout::CODE_BASE.to_le_bytes());
        // Missing the 8-byte target field entirely.
        let img = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(layout::CODE_BASE, SegFlags::RX, vec![0xC3]),
                Segment::new(layout::GLOBALS_BASE, SegFlags::R, table),
            ],
            symbols: vec![],
        };
        let err = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort))
            .err()
            .expect("must not load");
        assert!(
            matches!(err, LoadError::TruncatedTrapTable { declared: 1, .. }),
            "mid-entry truncation must classify as TruncatedTrapTable, got {err:?}"
        );
    }

    #[test]
    fn checked_u64_reads_never_slice_out_of_bounds() {
        use super::read_u64_le;
        let data = [1u8, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(read_u64_le(&data, 0), Some(0x0807060504030201));
        assert_eq!(read_u64_le(&data, 1), Some(0x0908070605040302));
        assert_eq!(read_u64_le(&data, 2), None, "ends mid-field");
        assert_eq!(read_u64_le(&data, 9), None);
        assert_eq!(read_u64_le(&data, usize::MAX), None, "offset overflow");
        assert_eq!(read_u64_le(&[], 0), None);
    }

    #[test]
    fn stub_assembly_failure_is_a_structured_error() {
        // An unbound label makes `Asm::finish` fail; stub_image must
        // surface that as LoadError::Asm instead of panicking.
        let err = stub_image(layout::CODE_BASE, |a| {
            let never_bound = a.label();
            a.jmp_label(never_bound);
        })
        .expect_err("must not assemble");
        assert!(
            matches!(err, LoadError::Asm(redfat_x86::AsmError::UnboundLabel(_))),
            "unbound label must map to LoadError::Asm, got {err:?}"
        );
        // And the error carries a human-readable rendering.
        assert!(err.to_string().contains("stub image assembly failed"));
    }

    #[test]
    fn zero_size_segments_are_skipped() {
        let img = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(layout::GLOBALS_BASE, SegFlags::RW, vec![]),
                Segment::new(layout::CODE_BASE, SegFlags::RX, vec![0xC3]),
            ],
            symbols: vec![],
        };
        assert!(Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).is_ok());
    }
}
