//! Image loading: ELF segments → guest address space, stack setup, and
//! trap-table discovery.

use crate::exec::{Emu, TRAP_TABLE_MAGIC};
use crate::runtime::Runtime;
use redfat_elf::Image;
use redfat_vm::{layout, Prot, Vm};

impl<R: Runtime> Emu<R> {
    /// Loads an ELF image into a fresh address space and prepares a guest
    /// ready to run: segments mapped with their declared protections, the
    /// stack mapped, `rsp`/`rip` initialized, the runtime's `on_load`
    /// hook fired (installing allocator tables), and any rewriter trap
    /// table registered.
    pub fn load_image(image: &Image, runtime: R) -> Emu<R> {
        Self::load_images(&[image], runtime)
    }

    /// Loads several images into one address space (e.g. a main program
    /// plus separately (un)hardened libraries, paper §7.4). Execution
    /// starts at the first image's entry point; trap tables of every
    /// image are registered.
    pub fn load_images(images: &[&Image], mut runtime: R) -> Emu<R> {
        let image = images.first().expect("at least one image");
        let mut vm = Vm::new();
        for (n, image) in images.iter().enumerate() {
            for (i, seg) in image.segments.iter().enumerate() {
                let mut prot = Prot(0);
                if seg.flags.readable() {
                    prot = prot | Prot::R;
                }
                if seg.flags.writable() {
                    prot = prot | Prot::W;
                }
                if seg.flags.executable() {
                    prot = prot | Prot::X;
                }
                vm.map_with_data(
                    seg.vaddr,
                    seg.mem_size,
                    prot,
                    &format!("img{n}.seg{i}"),
                    &seg.data,
                );
            }
        }
        vm.map(
            layout::STACK_TOP - layout::STACK_SIZE,
            layout::STACK_SIZE,
            Prot::RW,
            "stack",
        );
        runtime.on_load(&mut vm);

        let mut emu = Emu::new(vm, runtime);
        emu.cpu.rip = image.entry;
        // 16-byte aligned stack with a small headroom; the sentinel return
        // address 0 is never popped because entry code ends in `exit`.
        emu.cpu.set(redfat_x86::Reg::Rsp, layout::STACK_TOP - 64);

        // Discover int3 trap tables: data segments beginning with the
        // magic quadword, then a count, then (addr, target) pairs.
        for seg in images.iter().flat_map(|img| &img.segments) {
            if seg.data.len() >= 16 {
                let magic = u64::from_le_bytes(seg.data[..8].try_into().expect("8 bytes"));
                if magic == TRAP_TABLE_MAGIC {
                    let count =
                        u64::from_le_bytes(seg.data[8..16].try_into().expect("8 bytes")) as usize;
                    for i in 0..count {
                        let off = 16 + i * 16;
                        if off + 16 > seg.data.len() {
                            break;
                        }
                        let addr =
                            u64::from_le_bytes(seg.data[off..off + 8].try_into().expect("8 bytes"));
                        let target = u64::from_le_bytes(
                            seg.data[off + 8..off + 16].try_into().expect("8 bytes"),
                        );
                        emu.add_trap(addr, target);
                    }
                }
            }
        }
        emu
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{ErrorMode, HostRuntime};
    use crate::{Emu, RunResult};
    use redfat_elf::{Image, ImageKind, SegFlags, Segment};
    use redfat_vm::layout;
    use redfat_x86::{Asm, Reg, Width};

    /// Builds a tiny image from assembled code at CODE_BASE.
    fn image_of(build: impl FnOnce(&mut Asm)) -> Image {
        let mut a = Asm::new(layout::CODE_BASE);
        build(&mut a);
        let p = a.finish().expect("assembles");
        Image {
            kind: ImageKind::Exec,
            entry: p.base,
            segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
            symbols: vec![],
        }
    }

    fn exit_with(a: &mut Asm, reg_holding_code: Reg) {
        if reg_holding_code != Reg::Rdi {
            a.mov_rr(Width::W64, Reg::Rdi, reg_holding_code);
        }
        a.mov_ri(Width::W64, Reg::Rax, crate::runtime::syscalls::EXIT as i64);
        a.syscall();
    }

    #[test]
    fn loads_and_exits() {
        let img = image_of(|a| {
            a.mov_ri(Width::W64, Reg::Rbx, 42);
            exit_with(a, Reg::Rbx);
        });
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort));
        assert_eq!(emu.run(1000), RunResult::Exited(42));
        assert!(emu.counters.instructions >= 3);
        assert!(emu.counters.cycles > emu.counters.instructions);
    }

    #[test]
    fn stack_is_usable() {
        let img = image_of(|a| {
            a.mov_ri(Width::W64, Reg::Rcx, 7);
            a.push_r(Reg::Rcx);
            a.pop_r(Reg::Rdi);
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
        });
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort));
        assert_eq!(emu.run(1000), RunResult::Exited(7));
    }

    #[test]
    fn malloc_returns_heap_pointer() {
        let img = image_of(|a| {
            a.mov_ri(Width::W64, Reg::Rdi, 100);
            a.mov_ri(
                Width::W64,
                Reg::Rax,
                crate::runtime::syscalls::MALLOC as i64,
            );
            a.syscall();
            // Store and reload through the pointer.
            a.mov_ri(Width::W64, Reg::Rcx, 123);
            a.mov_mr(Width::W64, redfat_x86::Mem::base(Reg::Rax), Reg::Rcx);
            a.mov_rm(Width::W64, Reg::Rdi, redfat_x86::Mem::base(Reg::Rax));
            a.mov_ri(Width::W64, Reg::Rax, 0);
            a.syscall();
        });
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort));
        assert_eq!(emu.run(1000), RunResult::Exited(123));
    }

    #[test]
    fn trap_table_dispatches_int3() {
        // Code: int3 at a known address; trampoline sets rdi=9 and exits.
        let mut code = Asm::new(layout::CODE_BASE);
        code.int3();
        // Unreachable fallthrough.
        code.ud2();
        let code_p = code.finish().unwrap();

        let mut tramp = Asm::new(layout::TRAMPOLINE_BASE);
        tramp.mov_ri(Width::W64, Reg::Rdi, 9);
        tramp.mov_ri(Width::W64, Reg::Rax, 0);
        tramp.syscall();
        let tramp_p = tramp.finish().unwrap();

        let mut table = Vec::new();
        table.extend_from_slice(&crate::TRAP_TABLE_MAGIC.to_le_bytes());
        table.extend_from_slice(&1u64.to_le_bytes());
        table.extend_from_slice(&layout::CODE_BASE.to_le_bytes());
        table.extend_from_slice(&layout::TRAMPOLINE_BASE.to_le_bytes());

        let img = Image {
            kind: ImageKind::Exec,
            entry: layout::CODE_BASE,
            segments: vec![
                Segment::new(code_p.base, SegFlags::RX, code_p.bytes),
                Segment::new(tramp_p.base, SegFlags::RX, tramp_p.bytes),
                Segment::new(layout::GLOBALS_BASE, SegFlags::R, table),
            ],
            symbols: vec![],
        };
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort));
        assert_eq!(emu.run(100), RunResult::Exited(9));
        assert_eq!(emu.counters.int3_traps, 1);
    }

    #[test]
    fn stray_int3_is_an_error() {
        let img = image_of(|a| a.int3());
        let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort));
        assert!(matches!(
            emu.run(10),
            RunResult::Error(crate::EmuError::UnhandledInt3 { .. })
        ));
    }
}
