//! CPU state: registers and arithmetic flags.

use redfat_x86::{Cond, Reg, Width};

/// The arithmetic flags modeled by the emulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Carry.
    pub cf: bool,
    /// Zero.
    pub zf: bool,
    /// Sign.
    pub sf: bool,
    /// Overflow.
    pub of: bool,
    /// Parity (of the low result byte).
    pub pf: bool,
}

impl Flags {
    /// Encodes into the RFLAGS bit layout (for `pushfq`).
    pub fn to_rflags(self) -> u64 {
        let mut f = 0x2u64; // bit 1 is always set
        if self.cf {
            f |= 1;
        }
        if self.pf {
            f |= 1 << 2;
        }
        if self.zf {
            f |= 1 << 6;
        }
        if self.sf {
            f |= 1 << 7;
        }
        if self.of {
            f |= 1 << 11;
        }
        f
    }

    /// Decodes from the RFLAGS bit layout (for `popfq`).
    pub fn from_rflags(v: u64) -> Flags {
        Flags {
            cf: v & 1 != 0,
            pf: v & (1 << 2) != 0,
            zf: v & (1 << 6) != 0,
            sf: v & (1 << 7) != 0,
            of: v & (1 << 11) != 0,
        }
    }

    /// Evaluates a condition code against the flags.
    pub fn cond(&self, c: Cond) -> bool {
        match c {
            Cond::O => self.of,
            Cond::No => !self.of,
            Cond::B => self.cf,
            Cond::Ae => !self.cf,
            Cond::E => self.zf,
            Cond::Ne => !self.zf,
            Cond::Be => self.cf || self.zf,
            Cond::A => !self.cf && !self.zf,
            Cond::S => self.sf,
            Cond::Ns => !self.sf,
            Cond::P => self.pf,
            Cond::Np => !self.pf,
            Cond::L => self.sf != self.of,
            Cond::Ge => self.sf == self.of,
            Cond::Le => self.zf || self.sf != self.of,
            Cond::G => !self.zf && self.sf == self.of,
        }
    }
}

/// Guest CPU state.
#[derive(Debug, Clone, Default)]
pub struct Cpu {
    /// The sixteen general-purpose registers, indexed by [`Reg::code`].
    pub regs: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Arithmetic flags.
    pub flags: Flags,
}

impl Cpu {
    /// Reads a register at the given width (zero-extended).
    #[inline]
    pub fn read(&self, r: Reg, w: Width) -> u64 {
        let v = self.regs[r.code() as usize];
        match w {
            Width::W8 => v & 0xFF,
            Width::W32 => v & 0xFFFF_FFFF,
            Width::W64 => v,
        }
    }

    /// Writes a register at the given width with x86-64 semantics:
    /// 8-bit writes preserve the upper bits, 32-bit writes zero-extend.
    #[inline]
    pub fn write(&mut self, r: Reg, w: Width, v: u64) {
        let slot = &mut self.regs[r.code() as usize];
        match w {
            Width::W8 => *slot = (*slot & !0xFF) | (v & 0xFF),
            Width::W32 => *slot = v & 0xFFFF_FFFF,
            Width::W64 => *slot = v,
        }
    }

    /// Convenience 64-bit register read.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.code() as usize]
    }

    /// Convenience 64-bit register write.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.code() as usize] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_write_semantics() {
        let mut cpu = Cpu::default();
        cpu.set(Reg::Rax, 0xFFFF_FFFF_FFFF_FFFF);
        cpu.write(Reg::Rax, Width::W8, 0x12);
        assert_eq!(cpu.get(Reg::Rax), 0xFFFF_FFFF_FFFF_FF12);
        cpu.write(Reg::Rax, Width::W32, 0x3456);
        assert_eq!(cpu.get(Reg::Rax), 0x3456, "32-bit write zero-extends");
        cpu.write(Reg::Rax, Width::W64, u64::MAX);
        assert_eq!(cpu.read(Reg::Rax, Width::W32), 0xFFFF_FFFF);
        assert_eq!(cpu.read(Reg::Rax, Width::W8), 0xFF);
    }

    #[test]
    fn rflags_roundtrip() {
        for bits in 0..32u8 {
            let f = Flags {
                cf: bits & 1 != 0,
                zf: bits & 2 != 0,
                sf: bits & 4 != 0,
                of: bits & 8 != 0,
                pf: bits & 16 != 0,
            };
            assert_eq!(Flags::from_rflags(f.to_rflags()), f);
        }
    }

    #[test]
    fn signed_conditions() {
        // 3 - 5: sf=1, of=0 -> L true, G false.
        let f = Flags {
            sf: true,
            ..Flags::default()
        };
        assert!(f.cond(Cond::L));
        assert!(!f.cond(Cond::Ge));
        assert!(!f.cond(Cond::G));
        assert!(f.cond(Cond::Le));
    }

    #[test]
    fn unsigned_conditions() {
        let f = Flags {
            cf: true,
            zf: false,
            ..Flags::default()
        };
        assert!(f.cond(Cond::B));
        assert!(f.cond(Cond::Be));
        assert!(!f.cond(Cond::A));
        assert!(!f.cond(Cond::Ae));
    }
}
