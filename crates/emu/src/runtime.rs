//! The guest/runtime interface: syscall numbers, the [`Runtime`] trait,
//! and the standard [`HostRuntime`] backed by the RedFat heap.
//!
//! Guest binaries reach the runtime through small `syscall` stubs (the
//! reproduction's PLT): function number in `rax`, arguments in
//! `rdi`/`rsi`/`rdx`, result in `rax`. Swapping the [`Runtime`]
//! implementation under an *unmodified* guest binary is the analogue of
//! the paper's `LD_PRELOAD` trick for replacing `malloc`.

use crate::cpu::Cpu;
use redfat_lowfat::{LowFatConfig, RedFatHeap};
use redfat_vm::Vm;
use std::collections::{HashMap, VecDeque};

/// Syscall function numbers (in `rax` at the `syscall` instruction).
pub mod syscalls {
    /// `exit(code)`: terminate the guest.
    pub const EXIT: u64 = 0;
    /// `malloc(size) -> ptr`.
    pub const MALLOC: u64 = 1;
    /// `free(ptr)`.
    pub const FREE: u64 = 2;
    /// `calloc(count, elem) -> ptr`.
    pub const CALLOC: u64 = 3;
    /// `realloc(ptr, size) -> ptr`.
    pub const REALLOC: u64 = 4;
    /// `print_int(v)`: append to the integer output stream.
    pub const PRINT_INT: u64 = 5;
    /// `print_char(c)`: append to the byte output stream.
    pub const PRINT_CHAR: u64 = 6;
    /// `read_int() -> (rax=value, rdx=1)` or `(0, rdx=0)` at EOF.
    pub const READ_INT: u64 = 7;
    /// `memory_error(site, kind_bits)`: raised by RedFat instrumentation.
    pub const MEMORY_ERROR: u64 = 8;
    /// `profile_event(site, passed)`: raised by profiling instrumentation.
    pub const PROFILE_EVENT: u64 = 9;
}

/// What a memory-error report means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemErrKind {
    /// Out-of-bounds (includes redzone hits and, under the merged check,
    /// use-after-free: `SIZE == 0` fails the bounds test).
    Bounds,
    /// Metadata hardening failure (`SIZE > size(BASE) - 16`).
    Metadata,
    /// Use-after-free reported distinctly (unmerged check variant).
    UseAfterFree,
}

/// A guest memory error detected by instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryError {
    /// Instrumentation site identifier (the patched instruction address).
    pub site: u64,
    /// Error classification.
    pub kind: MemErrKind,
    /// Whether the offending access was a write.
    pub is_write: bool,
}

impl std::fmt::Display for MemoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "memory error at site {:#x}: {:?} ({})",
            self.site,
            self.kind,
            if self.is_write { "write" } else { "read" }
        )
    }
}

/// How the runtime reacts to a reported memory error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorMode {
    /// Abort execution (hardening deployments).
    Abort,
    /// Log and continue (bug-finding / testing deployments).
    Log,
}

/// Guest I/O state: an input queue and output streams.
#[derive(Debug, Clone, Default)]
pub struct GuestIo {
    /// Pending integer inputs for `read_int`.
    pub input: VecDeque<i64>,
    /// Integers printed via `print_int`.
    pub out_ints: Vec<i64>,
    /// Bytes printed via `print_char`.
    pub out_bytes: Vec<u8>,
}

impl GuestIo {
    /// Builds I/O state with the given input queue.
    pub fn with_input(input: Vec<i64>) -> GuestIo {
        GuestIo {
            input: input.into(),
            ..GuestIo::default()
        }
    }

    /// A stable digest of all output, used to assert that rewriting
    /// preserves program behavior.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
        let mut feed = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_01B3);
        };
        for v in &self.out_ints {
            for b in v.to_le_bytes() {
                feed(b);
            }
        }
        for &b in &self.out_bytes {
            feed(b);
        }
        h
    }
}

/// Per-site profiling counters collected during the profiling phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileStats {
    /// Times the site's LowFat check passed.
    pub passes: u64,
    /// Times the site's LowFat check failed (candidate false positive).
    pub fails: u64,
}

/// Result of a syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyscallOutcome {
    /// Continue execution.
    Continue,
    /// Guest exited with a status code.
    Exit(i64),
    /// Execution aborted on a memory error (hardening mode).
    Abort(MemoryError),
}

/// The runtime services a guest can reach.
pub trait Runtime {
    /// Whether [`Runtime::on_memory_access`] actually observes guest
    /// accesses. Consulted at compile time by the fast execution tier
    /// ([`crate::ExecBackend::Fast`]): when `false` -- the default, and
    /// correct for the stock [`HostRuntime`], whose instrumentation
    /// reports errors through syscalls rather than the hook -- the fast
    /// tier emits memory paths with no hook dispatch at all. Any
    /// implementation that overrides [`Runtime::on_memory_access`]
    /// MUST set this to `true`; the fast tier then transparently
    /// degrades to trace-tier semantics so every access still
    /// dispatches the hook in order.
    const OBSERVES_MEMORY: bool = false;

    /// Called once after the image is loaded, before execution.
    fn on_load(&mut self, vm: &mut Vm);

    /// Handles a `syscall` trap. Function number in `rax`.
    fn syscall(&mut self, cpu: &mut Cpu, vm: &mut Vm) -> SyscallOutcome;

    /// Observes (and may veto) every guest memory access.
    ///
    /// Returns extra model cycles to charge, or a detected error. The
    /// default is free and permissive; DBI-style tools (Memcheck
    /// baseline) override it.
    fn on_memory_access(
        &mut self,
        _vm: &Vm,
        _addr: u64,
        _len: u8,
        _is_write: bool,
        _rip: u64,
    ) -> Result<u64, MemoryError> {
        Ok(0)
    }
}

/// The standard runtime: RedFat heap (low-fat allocator + redzones),
/// guest I/O, memory-error collection and profiling support.
pub struct HostRuntime {
    /// The guest heap.
    pub heap: RedFatHeap,
    /// Guest I/O streams.
    pub io: GuestIo,
    /// Reaction to memory errors.
    pub error_mode: ErrorMode,
    /// Memory errors reported by instrumentation (all of them in `Log`
    /// mode; the fatal one in `Abort` mode).
    pub errors: Vec<MemoryError>,
    /// Profiling counters by site (populated by profiling binaries).
    pub profile: HashMap<u64, ProfileStats>,
}

impl HostRuntime {
    /// Creates a runtime with the default low-fat configuration.
    pub fn new(error_mode: ErrorMode) -> HostRuntime {
        HostRuntime::with_config(error_mode, LowFatConfig::default())
    }

    /// Creates a runtime whose heap is backed by the given allocator
    /// policy (default low-fat configuration otherwise).
    pub fn with_policy(
        error_mode: ErrorMode,
        policy: redfat_lowfat::AllocPolicyKind,
    ) -> HostRuntime {
        HostRuntime::with_config(
            error_mode,
            LowFatConfig {
                policy,
                ..LowFatConfig::default()
            },
        )
    }

    /// Creates a runtime with a custom allocator configuration.
    pub fn with_config(error_mode: ErrorMode, config: LowFatConfig) -> HostRuntime {
        HostRuntime {
            heap: RedFatHeap::new(config),
            io: GuestIo::default(),
            error_mode,
            errors: Vec::new(),
            profile: HashMap::new(),
        }
    }

    /// Sets the input queue.
    pub fn with_input(mut self, input: Vec<i64>) -> HostRuntime {
        self.io = GuestIo::with_input(input);
        self
    }

    fn decode_error(cpu: &Cpu) -> MemoryError {
        let site = cpu.get(redfat_x86::Reg::Rdi);
        let bits = cpu.get(redfat_x86::Reg::Rsi);
        let is_write = bits & 1 != 0;
        let kind = match bits >> 1 {
            1 => MemErrKind::Metadata,
            2 => MemErrKind::UseAfterFree,
            _ => MemErrKind::Bounds,
        };
        MemoryError {
            site,
            kind,
            is_write,
        }
    }
}

impl Runtime for HostRuntime {
    fn on_load(&mut self, vm: &mut Vm) {
        self.heap.install(vm);
    }

    fn syscall(&mut self, cpu: &mut Cpu, vm: &mut Vm) -> SyscallOutcome {
        use redfat_x86::Reg::{Rax, Rdi, Rdx, Rsi};
        let nr = cpu.get(Rax);
        match nr {
            syscalls::EXIT => return SyscallOutcome::Exit(cpu.get(Rdi) as i64),
            syscalls::MALLOC => {
                let size = cpu.get(Rdi);
                match self.heap.malloc(vm, size) {
                    Ok(p) => cpu.set(Rax, p),
                    Err(_) => cpu.set(Rax, 0),
                }
            }
            syscalls::FREE => {
                // Invalid frees terminate the guest in Abort mode; the
                // paper's runtime would report and abort similarly.
                let ptr = cpu.get(Rdi);
                if ptr != 0 {
                    let _ = self.heap.free(vm, ptr);
                }
                cpu.set(Rax, 0);
            }
            syscalls::CALLOC => {
                let (c, e) = (cpu.get(Rdi), cpu.get(Rsi));
                match self.heap.calloc(vm, c, e) {
                    Ok(p) => cpu.set(Rax, p),
                    Err(_) => cpu.set(Rax, 0),
                }
            }
            syscalls::REALLOC => {
                let (p, s) = (cpu.get(Rdi), cpu.get(Rsi));
                match self.heap.realloc(vm, p, s) {
                    Ok(p) => cpu.set(Rax, p),
                    Err(_) => cpu.set(Rax, 0),
                }
            }
            syscalls::PRINT_INT => {
                self.io.out_ints.push(cpu.get(Rdi) as i64);
                cpu.set(Rax, 0);
            }
            syscalls::PRINT_CHAR => {
                self.io.out_bytes.push(cpu.get(Rdi) as u8);
                cpu.set(Rax, 0);
            }
            syscalls::READ_INT => match self.io.input.pop_front() {
                Some(v) => {
                    cpu.set(Rax, v as u64);
                    cpu.set(Rdx, 1);
                }
                None => {
                    cpu.set(Rax, 0);
                    cpu.set(Rdx, 0);
                }
            },
            syscalls::MEMORY_ERROR => {
                let err = Self::decode_error(cpu);
                self.errors.push(err);
                cpu.set(Rax, 0);
                if self.error_mode == ErrorMode::Abort {
                    return SyscallOutcome::Abort(err);
                }
            }
            syscalls::PROFILE_EVENT => {
                let site = cpu.get(Rdi);
                let passed = cpu.get(Rsi) != 0;
                let entry = self.profile.entry(site).or_default();
                if passed {
                    entry.passes += 1;
                } else {
                    entry.fails += 1;
                }
                cpu.set(Rax, 0);
            }
            _ => {
                // Unknown syscall: report as exit with a distinctive code
                // rather than panicking the host.
                return SyscallOutcome::Exit(-0x515);
            }
        }
        SyscallOutcome::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_digest_distinguishes_outputs() {
        let mut a = GuestIo::default();
        let mut b = GuestIo::default();
        a.out_ints.push(1);
        b.out_ints.push(2);
        assert_ne!(a.digest(), b.digest());
        let mut c = GuestIo::default();
        c.out_ints.push(1);
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn error_decoding() {
        let mut cpu = Cpu::default();
        cpu.set(redfat_x86::Reg::Rdi, 0x401234);
        cpu.set(redfat_x86::Reg::Rsi, 0b11); // metadata | write
        let e = HostRuntime::decode_error(&cpu);
        assert_eq!(e.site, 0x401234);
        assert_eq!(e.kind, MemErrKind::Metadata);
        assert!(e.is_write);
    }
}
