//! Loader robustness regressions: every malformed input that used to
//! panic inside `Emu::load_image`/`load_images` must now surface as a
//! structured [`LoadError`] through the public API.

use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::{Emu, ErrorMode, HostRuntime, LoadError, RunResult, TRAP_TABLE_MAGIC};
use redfat_vm::layout;

fn code_image() -> Image {
    // xor edi, edi; xor eax, eax (EXIT); syscall
    let code = vec![0x31, 0xFF, 0x31, 0xC0, 0x0F, 0x05];
    Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![Segment::new(layout::CODE_BASE, SegFlags::RX, code)],
        symbols: vec![],
    }
}

fn rt() -> HostRuntime {
    HostRuntime::new(ErrorMode::Abort)
}

#[test]
fn empty_image_list_is_a_typed_error() {
    // Regression: `images.first().expect(...)` panicked on an empty
    // image list.
    let err = Emu::load_images(&[], rt()).err().expect("must not load");
    assert_eq!(err, LoadError::NoImages);
}

#[test]
fn truncated_trap_table_reports_segment_address() {
    // Regression: a trap table whose declared entry count exceeds the
    // segment data walked past the end and panicked. The structured
    // error names the offending segment.
    let mut img = code_image();
    let mut table = Vec::new();
    table.extend_from_slice(&TRAP_TABLE_MAGIC.to_le_bytes());
    table.extend_from_slice(&100u64.to_le_bytes()); // declares 100 entries
    table.extend_from_slice(&[0u8; 16]); // data for exactly 1
    img.segments
        .push(Segment::new(layout::GLOBALS_BASE, SegFlags::RW, table));
    let err = Emu::load_image(&img, rt()).err().expect("must not load");
    assert_eq!(
        err,
        LoadError::TruncatedTrapTable {
            segment: layout::GLOBALS_BASE,
            declared: 100,
            available: 1,
        }
    );
}

#[test]
fn reserved_range_collision_is_a_typed_error() {
    let mut img = code_image();
    img.segments.push(Segment {
        vaddr: layout::STACK_TOP - 4096,
        flags: SegFlags::RW,
        data: vec![0; 32],
        mem_size: 8192,
    });
    let err = Emu::load_image(&img, rt()).err().expect("must not load");
    assert!(
        matches!(err, LoadError::ReservedCollision { .. }),
        "{err:?}"
    );
}

#[test]
fn well_formed_image_still_loads_and_runs() {
    let mut emu = Emu::load_image(&code_image(), rt()).expect("loads");
    assert!(matches!(emu.run(1_000), RunResult::Exited(0)));
}
