//! Instruction-semantics tests: hand-computed flag and result values for
//! the trickier corners of the modeled subset, executed end to end.

use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::{syscalls, Emu, EmuError, ErrorMode, HostRuntime, RunResult};
use redfat_vm::layout;
use redfat_x86::{AluOp, Asm, Cond, Inst, Mem, MulDivOp, Op, Operands, Reg, ShiftOp, Width};

fn run_asm(f: impl FnOnce(&mut Asm)) -> Emu<HostRuntime> {
    let mut a = Asm::new(layout::CODE_BASE);
    f(&mut a);
    // exit(rdi)
    a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
    a.syscall();
    let p = a.finish().unwrap();
    let img = Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
        symbols: vec![],
    };
    let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
    let r = emu.run(100_000);
    assert!(matches!(r, RunResult::Exited(_)), "{r:?}");
    emu
}

/// Runs code and returns rdi at exit.
fn result_of(f: impl FnOnce(&mut Asm)) -> i64 {
    let emu = run_asm(f);
    emu.cpu.get(Reg::Rdi) as i64
}

#[test]
fn add_carry_and_overflow() {
    // u64::MAX + 1 wraps to 0 with CF=1; i64::MAX + 1 overflows (OF=1).
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rbx, -1);
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rbx, 1);
        a.setcc_r(Cond::B, Reg::Rdi); // CF
        a.mov_ri(Width::W64, Reg::Rcx, i64::MAX);
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rcx, 1);
        a.setcc_r(Cond::O, Reg::Rsi); // OF
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rsi, 1);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rsi);
    });
    assert_eq!(v & 1, 1, "carry set");
    assert_eq!(v & 2, 2, "overflow set");
}

#[test]
fn sub_borrow_and_signed_compare() {
    // 3 - 5: CF (borrow) set; signed compare says less.
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rbx, 3);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 5);
        a.setcc_r(Cond::B, Reg::Rdi);
        a.setcc_r(Cond::L, Reg::Rsi);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rsi, 1);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rsi);
        // -1 vs 1: unsigned above, signed less. Read both conditions
        // before any flag-writing shifts.
        a.mov_ri(Width::W64, Reg::Rbx, -1);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 1);
        a.setcc_r(Cond::A, Reg::Rcx);
        a.setcc_r(Cond::L, Reg::Rdx);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rcx, 2);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rcx);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rdx, 3);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rdx);
    });
    assert_eq!(v, 0b1111);
}

#[test]
fn mul_div_128bit() {
    // (2^40 * 2^30) / 2^30 = 2^40, via rdx:rax.
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rax, 1 << 40);
        a.mov_ri(Width::W64, Reg::Rbx, 1 << 30);
        a.mul_r(Reg::Rbx); // rdx:rax = 2^70
        a.div_r(Reg::Rbx); // back to 2^40
        a.mov_rr(Width::W64, Reg::Rdi, Reg::Rax);
    });
    assert_eq!(v, 1 << 40);
}

#[test]
fn idiv_signed_truncation() {
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rax, -7);
        a.cqo();
        a.mov_ri(Width::W64, Reg::Rbx, 2);
        a.idiv_r(Reg::Rbx);
        // quotient -3 in rax, remainder -1 in rdx.
        a.imul_rri(Width::W64, Reg::Rax, Reg::Rax, 10);
        a.alu_rr(AluOp::Add, Width::W64, Reg::Rax, Reg::Rdx);
        a.mov_rr(Width::W64, Reg::Rdi, Reg::Rax);
    });
    assert_eq!(v, -31); // -3*10 + -1
}

#[test]
fn divide_by_zero_faults() {
    let mut a = Asm::new(layout::CODE_BASE);
    a.mov_ri(Width::W64, Reg::Rax, 1);
    a.mov_ri(Width::W64, Reg::Rdx, 0);
    a.mov_ri(Width::W64, Reg::Rbx, 0);
    a.div_r(Reg::Rbx);
    let p = a.finish().unwrap();
    let img = Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
        symbols: vec![],
    };
    let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
    assert!(matches!(
        emu.run(100),
        RunResult::Error(EmuError::DivideError { .. })
    ));
}

#[test]
fn shifts_mask_count_and_set_carry() {
    let v = result_of(|a| {
        // sar of negative keeps sign.
        a.mov_ri(Width::W64, Reg::Rbx, -16);
        a.shift_ri(ShiftOp::Sar, Width::W64, Reg::Rbx, 2);
        a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx); // -4
                                                  // shr is logical.
        a.mov_ri(Width::W64, Reg::Rcx, -1);
        a.shift_ri(ShiftOp::Shr, Width::W64, Reg::Rcx, 60);
        a.alu_rr(AluOp::Add, Width::W64, Reg::Rdi, Reg::Rcx); // + 15
                                                              // count is masked mod 64: shl by 64 is a no-op.
        a.mov_ri(Width::W64, Reg::Rdx, 5);
        a.mov_ri(Width::W64, Reg::Rcx, 64);
        a.shift_cl(ShiftOp::Shl, Width::W64, Reg::Rdx);
        a.alu_rr(AluOp::Add, Width::W64, Reg::Rdi, Reg::Rdx); // + 5
    });
    assert_eq!(v, -4 + 15 + 5);
}

#[test]
fn w32_writes_zero_extend() {
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rbx, -1);
        // 32-bit op clears the upper half.
        a.alu_ri(AluOp::Add, Width::W32, Reg::Rbx, 1);
        a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
    });
    assert_eq!(v, 0, "32-bit result zero-extends");
}

#[test]
fn w8_writes_preserve_upper() {
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rbx, 0x1100);
        a.mov_ri(Width::W8, Reg::Rbx, 0x22);
        a.mov_rr(Width::W64, Reg::Rdi, Reg::Rbx);
    });
    assert_eq!(v, 0x1122);
}

#[test]
fn movsx_movzx_byte_loads() {
    let emu = run_asm(|a| {
        a.mov_ri(Width::W64, Reg::Rdi, 16);
        a.mov_ri(Width::W64, Reg::Rax, syscalls::MALLOC as i64);
        a.syscall();
        a.mov_ri(Width::W8, Reg::Rcx, -1);
        a.mov_mr(Width::W8, Mem::base(Reg::Rax), Reg::Rcx);
        a.movzx8_rm(Reg::Rbx, Mem::base(Reg::Rax));
        a.movsx8_rm(Reg::Rdx, Mem::base(Reg::Rax));
        a.mov_ri(Width::W64, Reg::Rdi, 0);
    });
    assert_eq!(emu.cpu.get(Reg::Rbx), 0xFF);
    assert_eq!(emu.cpu.get(Reg::Rdx) as i64, -1);
}

#[test]
fn pushfq_popfq_roundtrip_flags() {
    let v = result_of(|a| {
        // Set ZF via cmp equal, save flags, clobber them, restore, test.
        a.mov_ri(Width::W64, Reg::Rbx, 5);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 5);
        a.pushfq();
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 99); // ZF=0 now
        a.popfq();
        a.setcc_r(Cond::E, Reg::Rdi); // restored ZF=1
    });
    assert_eq!(v, 1);
}

#[test]
fn cmov_moves_only_when_taken() {
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rdi, 10);
        a.mov_ri(Width::W64, Reg::Rbx, 20);
        a.mov_ri(Width::W64, Reg::Rcx, 1);
        a.test_rr(Width::W64, Reg::Rcx, Reg::Rcx); // ZF=0
        a.cmov_rr(Cond::Ne, Width::W64, Reg::Rdi, Reg::Rbx); // taken
        a.cmov_rr(Cond::E, Width::W64, Reg::Rdi, Reg::Rcx); // not taken
    });
    assert_eq!(v, 20);
}

#[test]
fn call_ret_nest() {
    let v = result_of(|a| {
        let f = a.label();
        let g = a.label();
        let done = a.label();
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        a.call_label(f);
        a.jmp_label(done);
        a.bind(f).unwrap();
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
        a.call_label(g);
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 4);
        a.ret();
        a.bind(g).unwrap();
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 2);
        a.ret();
        a.bind(done).unwrap();
    });
    assert_eq!(v, 7);
}

#[test]
fn indirect_jump_and_call() {
    let v = result_of(|a| {
        let target = a.label();
        let done = a.label();
        // Load the target address into a register and jump through it.
        a.mov_ri(Width::W64, Reg::Rdi, 1);
        // Compute the address: code base is fixed, so we can bind first
        // and use a two-pass trick via call/pop instead; simplest is a
        // register call to a bound label address via named constant.
        a.jmp_label(done); // skip the helper
        a.bind(target).unwrap();
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 41);
        a.ret();
        a.bind(done).unwrap();
        let addr = a.label_addr(target).unwrap();
        a.mov_ri(Width::W64, Reg::Rcx, addr as i64);
        a.call_ind_r(Reg::Rcx);
    });
    assert_eq!(v, 42);
}

#[test]
fn neg_sets_carry_unless_zero() {
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rbx, 5);
        a.neg_r(Width::W64, Reg::Rbx);
        a.setcc_r(Cond::B, Reg::Rdi); // CF=1 for nonzero
        a.mov_ri(Width::W64, Reg::Rcx, 0);
        a.neg_r(Width::W64, Reg::Rcx);
        a.setcc_r(Cond::B, Reg::Rsi); // CF=0 for zero
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rsi, 1);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rsi);
    });
    assert_eq!(v, 1);
}

#[test]
fn rip_relative_load_reads_code_constant() {
    // Store a constant in a data segment, read it RIP-relative.
    let mut a = Asm::new(layout::CODE_BASE);
    a.emit(Inst::new(
        Op::Mov,
        Width::W64,
        Operands::RM {
            dst: Reg::Rdi,
            src: Mem::rip(layout::GLOBALS_BASE),
        },
    ))
    .unwrap();
    a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
    a.syscall();
    let p = a.finish().unwrap();
    let img = Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![
            Segment::new(p.base, SegFlags::RX, p.bytes),
            Segment::new(
                layout::GLOBALS_BASE,
                SegFlags::R,
                0x4243_4445u64.to_le_bytes().to_vec(),
            ),
        ],
        symbols: vec![],
    };
    let mut emu = Emu::load_image(&img, HostRuntime::new(ErrorMode::Abort)).expect("loads");
    assert_eq!(emu.run(100), RunResult::Exited(0x4243_4445));
}

#[test]
fn shift_by_zero_preserves_flags() {
    // The merged bounds check reads CF right after flag-setting code;
    // a shift with a (masked) zero count must leave all flags untouched,
    // exactly as on hardware.
    let v = result_of(|a| {
        // CF=1 from 3-5; an explicit imm-0 shift must not clear it.
        a.mov_ri(Width::W64, Reg::Rbx, 3);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 5);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rbx, 0);
        a.setcc_r(Cond::B, Reg::Rdi);
        // ZF=1 from equality; a cl count masked to zero (64 & 63) must
        // not touch it either.
        a.mov_ri(Width::W64, Reg::Rbx, 7);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 7);
        a.mov_ri(Width::W64, Reg::Rcx, 64);
        a.shift_cl(ShiftOp::Shr, Width::W64, Reg::Rbx);
        a.setcc_r(Cond::E, Reg::Rsi);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rsi, 1);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rsi);
        // 32-bit shifts mask at 32: count 32 is a flag-preserving no-op.
        a.mov_ri(Width::W64, Reg::Rbx, 1);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 2); // CF=1
        a.mov_ri(Width::W64, Reg::Rcx, 32);
        a.shift_cl(ShiftOp::Sar, Width::W32, Reg::Rbx);
        a.setcc_r(Cond::B, Reg::Rdx);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rdx, 2);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rdx);
    });
    assert_eq!(v, 0b111);
}

#[test]
fn imul_carry_and_overflow_track_signed_overflow() {
    let v = result_of(|a| {
        // i64::MAX * 2 overflows 64-bit signed: CF=OF=1.
        a.mov_ri(Width::W64, Reg::Rbx, i64::MAX);
        a.mov_ri(Width::W64, Reg::Rcx, 2);
        a.imul_rr(Width::W64, Reg::Rbx, Reg::Rcx);
        a.setcc_r(Cond::O, Reg::Rdi);
        a.setcc_r(Cond::B, Reg::Rdx); // CF mirrors OF for imul
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rdx, 1);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rdx);
        // -3 * 5 fits comfortably: CF=OF=0 (a plain sign bit must not
        // be mistaken for overflow).
        a.mov_ri(Width::W64, Reg::Rbx, -3);
        a.imul_rri(Width::W64, Reg::Rbx, Reg::Rbx, 5);
        a.setcc_r(Cond::O, Reg::Rdx);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rdx, 2);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rdx);
        // 32-bit: 0x40000000 * 4 overflows 32-bit signed.
        a.mov_ri(Width::W64, Reg::Rbx, 0x4000_0000);
        a.imul_rri(Width::W32, Reg::Rbx, Reg::Rbx, 4);
        a.setcc_r(Cond::O, Reg::Rdx);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rdx, 3);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rdx);
        // 32-bit: 1000 * 1000 fits: no overflow.
        a.mov_ri(Width::W64, Reg::Rbx, 1000);
        a.imul_rri(Width::W32, Reg::Rbx, Reg::Rbx, 1000);
        a.setcc_r(Cond::O, Reg::Rdx);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rdx, 4);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rdx);
    });
    assert_eq!(v, 0b01011);
}

#[test]
fn muldiv_sets_carry_on_wide_product() {
    let v = result_of(|a| {
        a.mov_ri(Width::W64, Reg::Rax, 1 << 40);
        a.mov_ri(Width::W64, Reg::Rbx, 1 << 30);
        a.mul_r(Reg::Rbx);
        a.setcc_r(Cond::B, Reg::Rdi); // CF: product exceeded 64 bits
        a.mov_ri(Width::W64, Reg::Rax, 3);
        a.mov_ri(Width::W64, Reg::Rbx, 4);
        a.mul_r(Reg::Rbx);
        a.setcc_r(Cond::B, Reg::Rsi);
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rsi, 1);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rsi);
    });
    assert_eq!(v, 1);
    // Silence unused import lint for MulDivOp in some cfgs.
    let _ = MulDivOp::Mul;
}

#[test]
fn mul_div_rewrite_every_flag() {
    // `Inst::writes_flags` reports mul/div as full flag writers, which
    // lets the liveness analysis hand instrumentation the flags to
    // trash right before one. The emulator must therefore pin every
    // flag bit afterwards: a bit carried over from the incoming state
    // would leak that trash into the original program (caught by the
    // lockstep selftest on the SPEC stand-ins).
    let v = result_of(|a| {
        // Incoming CF=1, SF=1 (from 0 - 1). idiv 7/2 -> q=3 must force
        // CF=0 and SF=0.
        a.mov_ri(Width::W64, Reg::Rbx, 0);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 1);
        a.mov_ri(Width::W64, Reg::Rax, 7);
        a.cqo();
        a.mov_ri(Width::W64, Reg::Rcx, 2);
        a.idiv_r(Reg::Rcx);
        a.setcc_r(Cond::B, Reg::Rdi); // CF: must be 0
        a.setcc_r(Cond::S, Reg::Rsi); // SF: must be 0
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rsi, 1);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rsi);
        // Incoming ZF=1 (7 == 7). div 0/3 -> q=0 must *set* ZF itself,
        // and mul 3*4 -> 12 must then clear it.
        a.mov_ri(Width::W64, Reg::Rbx, 7);
        a.alu_ri(AluOp::Cmp, Width::W64, Reg::Rbx, 7);
        a.mov_ri(Width::W64, Reg::Rax, 0);
        a.mov_ri(Width::W64, Reg::Rdx, 0);
        a.mov_ri(Width::W64, Reg::Rcx, 3);
        a.div_r(Reg::Rcx);
        a.setcc_r(Cond::E, Reg::Rbx); // ZF from quotient 0: must be 1
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rbx, 2);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rbx);
        a.mov_ri(Width::W64, Reg::Rax, 3);
        a.mov_ri(Width::W64, Reg::Rcx, 4);
        a.mul_r(Reg::Rcx);
        a.setcc_r(Cond::E, Reg::Rbx); // ZF from product 12: must be 0
        a.shift_ri(ShiftOp::Shl, Width::W64, Reg::Rbx, 3);
        a.alu_rr(AluOp::Or, Width::W64, Reg::Rdi, Reg::Rbx);
    });
    assert_eq!(v, 0b0100);
}
