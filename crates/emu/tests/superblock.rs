//! Backend-equivalence tests: the superblock translation cache must be
//! observationally identical to the step interpreter -- same run result,
//! same counters (including modeled cycles), same final CPU state -- on
//! control-flow shapes that stress the block cache: loops, one-instruction
//! blocks, jumps into the middle of an already-decoded run, straight-line
//! runs longer than [`SUPERBLOCK_CAP`], trampoline region crossings, and
//! step budgets that expire mid-block.

use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::{syscalls, Emu, ErrorMode, ExecBackend, HostRuntime, RunResult, SUPERBLOCK_CAP};
use redfat_vm::layout;
use redfat_x86::{AluOp, Asm, Cond, Reg, Width};

/// Builds an image from `f` (exit(rdi) appended), runs it under both
/// backends, and asserts result / counters / registers are identical.
/// Returns the common result and the rdi value at the end of the run.
fn assert_backends_agree(image: &Image, max_steps: u64) -> (RunResult, i64) {
    let mut by_backend = Vec::new();
    for backend in [ExecBackend::Step, ExecBackend::Superblock] {
        let mut emu = Emu::load_image(image, HostRuntime::new(ErrorMode::Log)).expect("loads");
        let result = emu.run_backend(backend, max_steps);
        by_backend.push((result, emu.counters, emu.cpu.rip, emu.cpu.get(Reg::Rdi)));
    }
    let (r0, c0, rip0, rdi0) = by_backend.remove(0);
    let (r1, c1, rip1, rdi1) = by_backend.remove(0);
    assert_eq!(r0, r1, "run result differs between backends");
    assert_eq!(c0, c1, "counters differ between backends");
    assert_eq!(rip0, rip1, "final rip differs between backends");
    assert_eq!(rdi0, rdi1, "final rdi differs between backends");
    (r0, rdi0 as i64)
}

fn image_of(f: impl FnOnce(&mut Asm)) -> Image {
    let mut a = Asm::new(layout::CODE_BASE);
    f(&mut a);
    a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
    a.syscall();
    let p = a.finish().unwrap();
    Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![Segment::new(p.base, SegFlags::RX, p.bytes)],
        symbols: vec![],
    }
}

#[test]
fn loop_and_short_blocks() {
    // A countdown loop whose body is a multi-instruction block, followed
    // by a chain of one-instruction blocks (back-to-back jumps).
    let image = image_of(|a| {
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        a.mov_ri(Width::W64, Reg::Rbx, 10);
        let head = a.label();
        a.bind(head).unwrap();
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 3);
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 1);
        a.jcc_label(Cond::Ne, head);
        // Single-instruction blocks: each jmp is its own superblock.
        let (b, c) = (a.label(), a.label());
        a.jmp_label(b);
        a.bind(c).unwrap();
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1000);
        let done = a.label();
        a.jmp_label(done);
        a.bind(b).unwrap();
        a.jmp_label(c);
        a.bind(done).unwrap();
    });
    let (r, rdi) = assert_backends_agree(&image, 100_000);
    assert_eq!(r, RunResult::Exited(1030));
    assert_eq!(rdi, 1030);
}

#[test]
fn jump_into_middle_of_decoded_run() {
    // The first pass decodes a straight-line block spanning `mid`; the
    // loop then re-enters at `mid`, which starts a *new* block there.
    let image = image_of(|a| {
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        a.mov_ri(Width::W64, Reg::Rbx, 3);
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
        let mid = a.label();
        a.bind(mid).unwrap();
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 10);
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 100);
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 1);
        a.jcc_label(Cond::Ne, mid);
    });
    let (r, _) = assert_backends_agree(&image, 100_000);
    assert_eq!(r, RunResult::Exited(331));
}

#[test]
fn straight_line_longer_than_cap() {
    // More fall-through instructions than SUPERBLOCK_CAP: the run is
    // split across several capped blocks, with no behavioral difference.
    let n = 2 * SUPERBLOCK_CAP + 17;
    let image = image_of(|a| {
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        for _ in 0..n {
            a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
        }
    });
    let (r, _) = assert_backends_agree(&image, 100_000);
    assert_eq!(r, RunResult::Exited(n as i64));
}

#[test]
fn trampoline_region_crossings() {
    // Main text jumps into a trampoline segment and back: both backends
    // must count the same transfers and region crossings.
    let mut a = Asm::new(layout::CODE_BASE);
    a.mov_ri(Width::W64, Reg::Rdi, 7);
    a.jmp_abs(layout::TRAMPOLINE_BASE).unwrap();
    let ret = a.here();
    a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
    a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
    a.syscall();
    let main = a.finish().unwrap();

    let mut t = Asm::new(layout::TRAMPOLINE_BASE);
    t.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 35);
    t.jmp_abs(ret).unwrap();
    let tramp = t.finish().unwrap();

    let image = Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![
            Segment::new(main.base, SegFlags::RX, main.bytes),
            Segment::new(tramp.base, SegFlags::RX, tramp.bytes),
        ],
        symbols: vec![],
    };
    let (r, _) = assert_backends_agree(&image, 100_000);
    assert_eq!(r, RunResult::Exited(43));

    // Sanity: the crossings actually happened (text -> trampoline -> text).
    let mut emu = Emu::load_image(&image, HostRuntime::new(ErrorMode::Log)).expect("loads");
    emu.run_backend(ExecBackend::Superblock, 100_000);
    assert_eq!(emu.counters.region_crossings, 2);
}

#[test]
fn step_budget_expires_mid_block() {
    // A budget that lands inside a straight-line run: both backends must
    // report StepLimit with identical counters and an identical rip
    // pointing mid-block.
    let image = image_of(|a| {
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        for _ in 0..40 {
            a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
        }
    });
    for budget in [1, 2, 7, 23, 38] {
        let (r, _) = assert_backends_agree(&image, budget);
        assert_eq!(r, RunResult::StepLimit, "budget {budget}");
    }
}

#[test]
fn block_cache_reuse_is_exact() {
    // Re-running the same loop many times exercises cache hits on every
    // iteration after the first; counters must scale exactly linearly.
    let image = image_of(|a| {
        a.mov_ri(Width::W64, Reg::Rdi, 0);
        a.mov_ri(Width::W64, Reg::Rbx, 1000);
        let head = a.label();
        a.bind(head).unwrap();
        a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
        a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 1);
        a.jcc_label(Cond::Ne, head);
    });
    let (r, _) = assert_backends_agree(&image, 100_000);
    assert_eq!(r, RunResult::Exited(1000));
}
