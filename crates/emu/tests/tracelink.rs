//! Trace-linked tier tests: the chained backend must stay
//! observationally identical to the step interpreter across the
//! machinery the superblock tier does not have -- direct-exit chaining,
//! indirect-branch inline caches, cross-segment mega traces, segment
//! invalidation mid-loop, and step budgets that expire inside a trace.

use redfat_elf::{Image, ImageKind, SegFlags, Segment};
use redfat_emu::{syscalls, Emu, ErrorMode, ExecBackend, HostRuntime, RunResult};
use redfat_vm::{layout, Prot};
use redfat_x86::{AluOp, Asm, Cond, Mem, Reg, Width};

/// Two-phase workload exercising every link kind. Phase 1 is a
/// single-trace spin loop (the loop-closing `jne` is a direct terminal,
/// so iterations chain through `link_taken`). Phase 2 calls a helper in
/// the *trampoline segment* through a register-indirect call: the
/// `call` and the helper's `ret` both exit through inline caches, and
/// the helper's trace depends on the trampoline segment alone, so
/// invalidating that segment strands it while the main-segment traces
/// holding IC entries to it stay live. Exits with rdi = 1800.
fn cross_segment_loop() -> (Image, i64) {
    let mut a = Asm::new(layout::CODE_BASE);
    a.mov_ri(Width::W64, Reg::Rdi, 0);
    // Phase 1: direct chaining.
    a.mov_ri(Width::W64, Reg::Rbx, 300);
    let spin = a.label();
    a.bind(spin).unwrap();
    a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
    a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 1);
    a.jcc_label(Cond::Ne, spin);
    // Phase 2: inline-cached indirect call into the trampoline segment.
    a.mov_ri(Width::W64, Reg::Rbx, 500);
    a.mov_ri(Width::W64, Reg::Rsi, layout::TRAMPOLINE_BASE as i64);
    let head = a.label();
    a.bind(head).unwrap();
    a.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 2);
    a.call_ind_r(Reg::Rsi);
    a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 1);
    a.jcc_label(Cond::Ne, head);
    a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
    a.syscall();
    let main = a.finish().unwrap();

    let mut t = Asm::new(layout::TRAMPOLINE_BASE);
    t.alu_ri(AluOp::Add, Width::W64, Reg::Rdi, 1);
    t.ret();
    let tramp = t.finish().unwrap();

    let image = Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![
            Segment::new(main.base, SegFlags::RX, main.bytes),
            Segment::new(tramp.base, SegFlags::RX, tramp.bytes),
        ],
        symbols: vec![],
    };
    (image, 300 + 500 * 3)
}

fn load(image: &Image) -> Emu<HostRuntime> {
    Emu::load_image(image, HostRuntime::new(ErrorMode::Log)).expect("loads")
}

/// Architectural snapshot compared between backends.
fn snap(emu: &Emu<HostRuntime>) -> (u64, i64, i64, redfat_emu::Counters) {
    (
        emu.cpu.rip,
        emu.cpu.get(Reg::Rdi) as i64,
        emu.cpu.get(Reg::Rbx) as i64,
        emu.counters,
    )
}

#[test]
fn chained_run_matches_step_and_uses_every_link_kind() {
    let (image, expect) = cross_segment_loop();
    let mut step = load(&image);
    let rs = step.run_backend(ExecBackend::Step, 1_000_000);
    let mut trace = load(&image);
    let rt = trace.run_backend(ExecBackend::Trace, 1_000_000);
    assert_eq!(rs, RunResult::Exited(expect));
    assert_eq!(rt, RunResult::Exited(expect));
    assert_eq!(snap(&step), snap(&trace), "architectural state differs");

    // The observability counters prove the tier actually engaged.
    let s = trace.trace_stats();
    assert!(s.chain_follows > 0, "direct chaining never fired: {s}");
    assert!(s.ic_hits > 0, "inline caches never hit: {s}");
    assert_eq!(s.invalidations, 0);
    assert_eq!(s.links_severed, 0);
    // The step backend touches no translation machinery at all.
    let s = step.trace_stats();
    assert_eq!((s.hits, s.misses, s.chain_follows, s.ic_hits), (0, 0, 0, 0));
}

#[test]
fn invalidation_severs_links_and_inline_caches_mid_loop() {
    let (image, expect) = cross_segment_loop();
    // Stop mid-way through the indirect-call loop, once chaining and
    // the inline caches are warm.
    let mut emu = load(&image);
    assert_eq!(
        emu.run_backend(ExecBackend::Trace, 2500),
        RunResult::StepLimit
    );
    let before = emu.trace_stats();
    assert!(before.chain_follows > 0 && before.ic_hits > 0, "{before}");
    assert_eq!(before.invalidations, 0);

    // Bump the trampoline segment's version. The helper's trace is
    // stranded; the main-segment traces stay reachable but their IC
    // entries (and any link into the trampoline) must be severed on
    // the next follow, not silently executed stale.
    assert!(emu.invalidate_code(layout::TRAMPOLINE_BASE));
    assert!(!emu.invalidate_code(0xdead_0000), "untracked address");
    assert_eq!(
        emu.run_backend(ExecBackend::Trace, 1_000_000),
        RunResult::Exited(expect)
    );
    let after = emu.trace_stats();
    assert_eq!(after.invalidations, 1);
    assert!(
        after.links_severed > before.links_severed,
        "stale links/IC entries were not severed: {after}"
    );
    assert!(
        after.misses > before.misses,
        "stranded traces were not rebuilt"
    );

    // Counter equivalence must hold across the invalidation: the whole
    // interrupted-invalidated-resumed run retires exactly what one
    // uninterrupted step() run does.
    let mut step = load(&image);
    step.run_backend(ExecBackend::Step, 1_000_000);
    assert_eq!(
        snap(&step),
        snap(&emu),
        "state diverged across invalidation"
    );
}

/// Spin loop whose body stores and loads through the same data word, so
/// the fast tier resolves both operands via host-pointer [`MemSlot`]s
/// baked into the trace. Exits with rdi = sum(1..=600).
///
/// [`MemSlot`]: redfat_vm::MemSlot
fn mem_loop() -> (Image, i64) {
    let mut a = Asm::new(layout::CODE_BASE);
    a.mov_ri(Width::W64, Reg::Rdi, 0);
    a.mov_ri(Width::W64, Reg::Rsi, layout::GLOBALS_BASE as i64);
    a.mov_ri(Width::W64, Reg::Rbx, 600);
    let spin = a.label();
    a.bind(spin).unwrap();
    a.mov_mr(Width::W64, Mem::base(Reg::Rsi), Reg::Rbx);
    a.alu_rm(AluOp::Add, Width::W64, Reg::Rdi, Mem::base(Reg::Rsi));
    a.alu_ri(AluOp::Sub, Width::W64, Reg::Rbx, 1);
    a.jcc_label(Cond::Ne, spin);
    a.mov_ri(Width::W64, Reg::Rax, syscalls::EXIT as i64);
    a.syscall();
    let p = a.finish().unwrap();
    let image = Image {
        kind: ImageKind::Exec,
        entry: layout::CODE_BASE,
        segments: vec![
            Segment::new(p.base, SegFlags::RX, p.bytes),
            Segment::new(layout::GLOBALS_BASE, SegFlags::RW, vec![0; 4096]),
        ],
        symbols: vec![],
    };
    (image, 600 * 601 / 2)
}

#[test]
fn self_modifying_invalidation_severs_host_pointer_cache() {
    let (image, expect) = mem_loop();
    // Warm the fast tier: the spin trace is built and its MemSlots are
    // filled by the first iterations.
    let mut emu = load(&image);
    assert_eq!(
        emu.run_backend(ExecBackend::Fast, 500),
        RunResult::StepLimit
    );
    let before = emu.trace_stats();
    assert!(before.hits > 0, "fast tier never reused a trace: {before}");

    // Model a self-modifying write to the loop body. The trace -- and
    // with it every baked host-pointer slot -- must be dropped, not
    // consulted stale; the rebuild re-resolves the operands.
    assert!(emu.invalidate_code(layout::CODE_BASE));
    assert_eq!(
        emu.run_backend(ExecBackend::Fast, 1_000_000),
        RunResult::Exited(expect)
    );
    let after = emu.trace_stats();
    assert_eq!(after.invalidations, 1);
    assert!(after.misses > before.misses, "trace was not rebuilt");

    // The interrupted-invalidated-resumed fast run must land on the
    // uninterrupted step() state bit for bit, counters included.
    let mut step = load(&image);
    assert_eq!(
        step.run_backend(ExecBackend::Step, 1_000_000),
        RunResult::Exited(expect)
    );
    assert_eq!(
        snap(&step),
        snap(&emu),
        "state diverged across invalidation"
    );
}

#[test]
fn segment_remap_forces_slow_path_fallback() {
    let (image, expect) = mem_loop();
    // Warm the fast tier, then remap: mapping a fresh segment and
    // growing an existing one both bump the VM epoch, so every baked
    // host-pointer slot goes stale at once and the next access per slot
    // must take the tagged-TLB slow path and re-tag.
    let mut emu = load(&image);
    assert_eq!(
        emu.run_backend(ExecBackend::Fast, 500),
        RunResult::StepLimit
    );
    let epoch = emu.vm.epoch();
    emu.vm.map(0x7100_0000, 4096, Prot::R | Prot::W, "remap");
    emu.vm.grow(layout::GLOBALS_BASE, 8192);
    assert!(emu.vm.epoch() > epoch, "remap/grow did not bump the epoch");

    // Resuming must re-resolve through the new segment table -- the
    // grown data segment's host storage may have moved -- and still
    // land on the uninterrupted step() state exactly.
    assert_eq!(
        emu.run_backend(ExecBackend::Fast, 1_000_000),
        RunResult::Exited(expect)
    );
    let mut step = load(&image);
    assert_eq!(
        step.run_backend(ExecBackend::Step, 1_000_000),
        RunResult::Exited(expect)
    );
    assert_eq!(snap(&step), snap(&emu), "state diverged across remap");
}

#[test]
fn fast_budget_expiry_mid_trace_retires_identical_counter_deltas() {
    let (image, expect) = cross_segment_loop();
    // Same boundary sweep as the trace-tier test above, against the
    // fast tier: budgets landing inside the spin trace force the
    // batched-counter prefix path, and every stop must show exactly the
    // step interpreter's counter deltas (the static block charge rolled
    // back to the retired prefix).
    for budget in [1, 2, 3, 901, 902, 903, 910, 1500, 2500, 3901] {
        let mut step = load(&image);
        let mut fast = load(&image);
        assert_eq!(
            step.run_backend(ExecBackend::Step, budget),
            RunResult::StepLimit
        );
        assert_eq!(
            fast.run_backend(ExecBackend::Fast, budget),
            RunResult::StepLimit
        );
        assert_eq!(snap(&step), snap(&fast), "divergence at budget {budget}");

        let rs = step.run_backend(ExecBackend::Step, 1_000_000);
        let rf = fast.run_backend(ExecBackend::Fast, 1_000_000);
        assert_eq!(rs, RunResult::Exited(expect));
        assert_eq!(rf, RunResult::Exited(expect));
        assert_eq!(
            snap(&step),
            snap(&fast),
            "post-resume divergence (budget {budget})"
        );
    }
}

#[test]
fn budget_expiry_mid_trace_retires_identical_counter_deltas() {
    let (image, expect) = cross_segment_loop();
    // Budgets landing in the spin trace, on its boundary, and inside
    // the inlined call loop: at every stop the chained tier must have
    // retired exactly the step interpreter's counter deltas, and
    // resuming must converge to the same final state.
    for budget in [1, 2, 3, 901, 902, 903, 910, 1500, 2500, 3901] {
        let mut step = load(&image);
        let mut trace = load(&image);
        assert_eq!(
            step.run_backend(ExecBackend::Step, budget),
            RunResult::StepLimit
        );
        assert_eq!(
            trace.run_backend(ExecBackend::Trace, budget),
            RunResult::StepLimit
        );
        assert_eq!(snap(&step), snap(&trace), "divergence at budget {budget}");

        let rs = step.run_backend(ExecBackend::Step, 1_000_000);
        let rt = trace.run_backend(ExecBackend::Trace, 1_000_000);
        assert_eq!(rs, RunResult::Exited(expect));
        assert_eq!(rt, RunResult::Exited(expect));
        assert_eq!(
            snap(&step),
            snap(&trace),
            "post-resume divergence (budget {budget})"
        );
    }
}
