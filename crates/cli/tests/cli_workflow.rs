//! End-to-end CLI tests: the full Figure 5 workflow driven exactly as a
//! user would drive it, through files on disk.

use redfat_cli::run_cli;

fn args(s: &[&str]) -> Vec<String> {
    s.iter().map(|a| a.to_string()).collect()
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("redfat-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("tempdir");
    dir
}

const ANTI_IDIOM_SRC: &str = "
fn main() {
    var t = malloc(16 * 8);
    var t1 = t - 64;
    for (var i = 0; i < 16; i = i + 1) { t[i] = i * i; }
    var buf = malloc(8 * 8);
    var pad = malloc(8 * 8);
    pad[0] = 1;
    var i = input();
    var j = input();
    print(t1[8 + i]);
    buf[j] = 7;
    return 0;
}";

#[test]
fn full_workflow_through_files() {
    let dir = tmpdir("workflow");
    let src = dir.join("prog.mc");
    let elf = dir.join("prog.elf");
    let prof = dir.join("prog.prof");
    let lst = dir.join("allow.lst");
    let hard = dir.join("prog.hard");
    std::fs::write(&src, ANTI_IDIOM_SRC).unwrap();

    // compile
    let out = run_cli(&args(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        elf.to_str().unwrap(),
    ]))
    .expect("compile");
    assert!(out.contains("bytes of code"));

    // profile + genlist
    run_cli(&args(&[
        "profile",
        elf.to_str().unwrap(),
        "-o",
        prof.to_str().unwrap(),
    ]))
    .expect("profile");
    let out = run_cli(&args(&[
        "genlist",
        prof.to_str().unwrap(),
        "--input",
        "3,2",
        "-o",
        lst.to_str().unwrap(),
    ]))
    .expect("genlist");
    assert!(out.contains("allow-listed"));
    let lst_text = std::fs::read_to_string(&lst).unwrap();
    assert!(lst_text.starts_with('#'));

    // harden with the allow-list
    let out = run_cli(&args(&[
        "harden",
        elf.to_str().unwrap(),
        "-o",
        hard.to_str().unwrap(),
        "--allowlist",
        lst.to_str().unwrap(),
    ]))
    .expect("harden");
    assert!(out.contains("trampolines"));

    // benign run: clean, same output as the original.
    let benign =
        run_cli(&args(&["run", hard.to_str().unwrap(), "--input", "5,2"])).expect("benign run");
    assert!(benign.contains("Exited(0)"), "{benign}");

    // attack run: detected.
    let attack = run_cli(&args(&[
        "run",
        hard.to_str().unwrap(),
        "--input",
        "5,12",
        "--log",
    ]))
    .expect("attack run");
    assert!(attack.contains("error:"), "{attack}");

    // memcheck on the ORIGINAL binary misses the skip.
    let mc = run_cli(&args(&[
        "run",
        elf.to_str().unwrap(),
        "--input",
        "5,12",
        "--memcheck",
    ]))
    .expect("memcheck run");
    assert!(mc.contains("Exited(0)"), "{mc}");
    assert!(!mc.contains("memcheck error"), "{mc}");
}

#[test]
fn disasm_and_stats() {
    let dir = tmpdir("disasm");
    let src = dir.join("p.mc");
    let elf = dir.join("p.elf");
    std::fs::write(&src, "fn main() { print(1); return 0; }").unwrap();
    run_cli(&args(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        elf.to_str().unwrap(),
    ]))
    .unwrap();

    let dis = run_cli(&args(&["disasm", elf.to_str().unwrap()])).unwrap();
    assert!(dis.contains("syscall"));
    assert!(dis.contains("0x400000:"));

    let stats = run_cli(&args(&["stats", elf.to_str().unwrap()])).unwrap();
    assert!(stats.contains("basic blocks"));
    assert!(stats.contains("kind:            Exec"));
}

#[test]
fn analyze_reports_flow_verdicts() {
    let dir = tmpdir("analyze");
    let src = dir.join("p.mc");
    let elf = dir.join("p.elf");
    std::fs::write(
        &src,
        "global tab[4];
         fn main() {
             var p = &tab;
             var a = malloc(32);
             p[1] = 5;
             a[1] = p[1];
             a[1] = a[1] + 1;
             print(a[1]);
             return 0;
         }",
    )
    .unwrap();
    run_cli(&args(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        elf.to_str().unwrap(),
    ]))
    .unwrap();

    let report = run_cli(&args(&["analyze", elf.to_str().unwrap()])).unwrap();
    assert!(report.contains("access sites:"), "{report}");
    assert!(report.contains("elim:flow"), "{report}");
    assert!(report.contains("elim:syntactic"), "{report}");
    assert!(report.contains("redundant("), "{report}");
}

#[test]
fn harden_flags_change_the_plan() {
    let dir = tmpdir("flags");
    let src = dir.join("p.mc");
    let elf = dir.join("p.elf");
    std::fs::write(
        &src,
        "fn main() { var a = malloc(80); for (var i = 0; i < 10; i = i + 1) { a[i] = i; } print(a[4]); return 0; }",
    )
    .unwrap();
    run_cli(&args(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        elf.to_str().unwrap(),
    ]))
    .unwrap();

    let full = run_cli(&args(&[
        "harden",
        elf.to_str().unwrap(),
        "-o",
        dir.join("f.elf").to_str().unwrap(),
    ]))
    .unwrap();
    let writes_only = run_cli(&args(&[
        "harden",
        elf.to_str().unwrap(),
        "-o",
        dir.join("w.elf").to_str().unwrap(),
        "--writes-only",
    ]))
    .unwrap();
    let unopt = run_cli(&args(&[
        "harden",
        elf.to_str().unwrap(),
        "-o",
        dir.join("u.elf").to_str().unwrap(),
        "--no-elim",
        "--no-batch",
        "--no-merge",
    ]))
    .unwrap();
    let sites = |s: &str| -> usize {
        s.split(':')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(sites(&writes_only) < sites(&full));
    assert!(sites(&unopt) >= sites(&full));

    // Unknown flags/commands fail cleanly.
    assert!(run_cli(&args(&["frobnicate"])).is_err());
    assert!(run_cli(&args(&["run", "/nonexistent.elf"])).is_err());
}

#[test]
fn error_symbolization_names_the_function() {
    let dir = tmpdir("sym");
    let src = dir.join("p.mc");
    let elf = dir.join("p.elf");
    let hard = dir.join("p.hard");
    std::fs::write(
        &src,
        "fn vulnerable(buf, i) { buf[i] = 1; return 0; }
         fn main() { var a = malloc(40); var b = malloc(40); b[0] = 1; vulnerable(a, input()); return 0; }",
    )
    .unwrap();
    run_cli(&args(&[
        "compile",
        src.to_str().unwrap(),
        "-o",
        elf.to_str().unwrap(),
    ]))
    .unwrap();
    // Keep symbols (no --strip): bug-finding mode reports function names.
    run_cli(&args(&[
        "harden",
        elf.to_str().unwrap(),
        "-o",
        hard.to_str().unwrap(),
    ]))
    .unwrap();
    let out = run_cli(&args(&[
        "run",
        hard.to_str().unwrap(),
        "--input",
        "10",
        "--log",
    ]))
    .unwrap();
    assert!(out.contains("in vulnerable+"), "{out}");
}
