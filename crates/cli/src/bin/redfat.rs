//! The `redfat` binary: thin wrapper over [`redfat_cli::run_cli`].

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match redfat_cli::run_cli(&argv) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("redfat: {e}");
            std::process::exit(e.code);
        }
    }
}
