//! The `redfat` command-line tool: the user-facing shape of the paper's
//! released artifact (<https://github.com/GJDuck/RedFat>), adapted to
//! this reproduction's substrate.
//!
//! ```text
//! redfat compile  prog.mc  -o prog.elf          # mini-C → ELF
//! redfat harden   prog.elf -o prog.hard [opts]  # production hardening
//! redfat profile  prog.elf -o prog.prof         # §5 profiling binary
//! redfat genlist  prog.prof --input .. -o allow.lst
//! redfat run      prog.elf [--input ..] [--log] [--memcheck]
//! redfat disasm   prog.elf
//! redfat analyze  prog.elf
//! redfat stats    prog.elf
//! ```
//!
//! The library half ([`run_cli`]) is what the binary calls and what the
//! tests exercise: it performs all I/O through the filesystem and
//! returns the text it would print.

use redfat_core::{
    collect_allowlist, harden_threaded, instrument_profile, try_run_backend_policy, try_run_once,
    AllowList, HardenConfig, LowFatPolicy,
};
use redfat_elf::Image;
use redfat_emu::{AllocPolicyKind, Emu, ErrorMode, ExecBackend, RunResult};
use redfat_memcheck::MemcheckRuntime;
use redfat_parallel::resolve_threads;
use std::fmt::Write as _;

/// A CLI failure: message for stderr, suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn err(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 1,
    }
}

const USAGE: &str = "usage: redfat <command> [args]

commands:
  compile <src.mc> -o <out.elf>        compile mini-C to an ELF image
  harden  <in.elf> -o <out.elf> [opts] harden a binary (drop-in output)
  profile <in.elf> -o <out.elf>        build the profiling binary (step 1 of Fig. 5)
  genlist <prof.elf> -o <allow.lst> [--input v,v,..]
                                       run the profiling binary, emit allow.lst
  fuzzlist <in.elf> -o <allow.lst> [--input seed,..] [--iters N]
                                       coverage-guided profiling (E9AFL-style)
  run     <in.elf> [--input v,v,..] [--log] [--memcheck] [--max-steps N]
          [--backend step|superblock|trace|fast] [--stats]
          [--alloc-policy lowfat|rand-lowfat]
                                       --backend selects the execution tier
                                       (default step); --stats prints the
                                       translation-cache counters afterwards;
                                       --alloc-policy selects the heap backend
                                       (default lowfat)
  disasm  <in.elf>                     linear disassembly of code segments
  analyze <in.elf> [--interproc]       per-site static analysis report
  analyze <in.elf> --callgraph         call graph + function summaries
                                       (text report followed by Graphviz DOT)
  stats   <in.elf>                     image and instrumentation-plan statistics
  selftest [--quick] [--superblock] [--fast] [--alloc-policy lowfat|rand-lowfat]
                                       differential self-test: lockstep oracle,
                                       round-trip fuzzer, allocator invariants
                                       (the invariant campaign always covers
                                       every allocator policy; --alloc-policy
                                       picks the heap backend for the lockstep
                                       runs);
                                       --superblock also runs the superblock
                                       and trace-linked execution backends
                                       against the step interpreter on every
                                       workload; --fast adds the fast tier's
                                       boundary-audit oracle
  selftest --faults [--quick]          fault-injection sweep: seeded mutants of
                                       every stand-in driven through the full
                                       pipeline; any panic fails the sweep

  serve    --socket <sock> [--cache-dir <dir>] [--workers N]
                                       hardening-as-a-service daemon: accepts
                                       submit jobs, dedupes identical in-flight
                                       requests, and serves warm results from a
                                       content-addressed artifact cache
  submit   <in.elf> --socket <sock> [-o <out.elf>] [--op harden|analyze|profile]
           [harden opts]               submit a job to a running daemon
  svcstats --socket <sock>             print a running daemon's counters
  shutdown --socket <sock>             ask a running daemon to exit

`harden`, `analyze`, and `selftest` accept --threads N to set the worker
thread count (falls back to the REDFAT_THREADS environment variable, then
to the available parallelism).

harden options:
  --allowlist <allow.lst>   full check only on listed sites (Fig. 5 step 2)
  --redzone-only            disable the LowFat component entirely
  --lowfat-only             ablation: pure class-size bounds checks
  --writes-only             do not instrument reads (-reads column)
  --no-size                 disable metadata hardening (-size column)
  --no-elim | --no-batch | --no-merge  disable an optimization (Table 1)
  --no-flow                 disable flow-sensitive provenance elimination
  --no-redundant            disable dominator-based redundant-check elimination
  --interproc               enable interprocedural call summaries (+interproc)
  --alloc-policy <kind>     allocator backend the artifact is keyed to
                            (lowfat | rand-lowfat; checks are backend-agnostic)
  --strip                   strip symbols before hardening";

struct Args {
    positional: Vec<String>,
    flags: std::collections::BTreeMap<String, Option<String>>,
}

/// Flags that take a value.
const VALUE_FLAGS: [&str; 12] = [
    "-o",
    "--input",
    "--max-steps",
    "--allowlist",
    "--iters",
    "--threads",
    "--backend",
    "--socket",
    "--cache-dir",
    "--workers",
    "--op",
    "--alloc-policy",
];

fn parse_args(argv: &[String]) -> Result<Args, CliError> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut it = argv.iter().peekable();
    while let Some(a) = it.next() {
        if a.starts_with('-') {
            if VALUE_FLAGS.contains(&a.as_str()) {
                let v = it
                    .next()
                    .ok_or_else(|| err(format!("{a} requires a value")))?;
                flags.insert(a.clone(), Some(v.clone()));
            } else {
                flags.insert(a.clone(), None);
            }
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Args { positional, flags })
}

impl Args {
    fn out(&self) -> Result<&str, CliError> {
        self.flags
            .get("-o")
            .and_then(|v| v.as_deref())
            .ok_or_else(|| err("missing -o <output>"))
    }

    fn has(&self, f: &str) -> bool {
        self.flags.contains_key(f)
    }

    fn input_values(&self) -> Result<Vec<i64>, CliError> {
        match self.flags.get("--input").and_then(|v| v.as_deref()) {
            None => Ok(Vec::new()),
            Some(s) => s
                .split(',')
                .filter(|p| !p.is_empty())
                .map(|p| {
                    p.trim()
                        .parse::<i64>()
                        .map_err(|e| err(format!("bad --input value {p:?}: {e}")))
                })
                .collect(),
        }
    }

    fn max_steps(&self) -> Result<u64, CliError> {
        match self.flags.get("--max-steps").and_then(|v| v.as_deref()) {
            None => Ok(1_000_000_000),
            Some(s) => s.parse().map_err(|e| err(format!("bad --max-steps: {e}"))),
        }
    }

    /// Execution backend for `run`: `--backend step|superblock|trace|fast`.
    fn backend(&self) -> Result<ExecBackend, CliError> {
        match self.flags.get("--backend").and_then(|v| v.as_deref()) {
            None => Ok(ExecBackend::Step),
            Some(s) => ExecBackend::parse(s)
                .ok_or_else(|| err(format!("bad --backend {s:?} (step|superblock|trace|fast)"))),
        }
    }

    /// Allocator backend: `--alloc-policy lowfat|rand-lowfat`.
    fn alloc_policy(&self) -> Result<AllocPolicyKind, CliError> {
        match self.flags.get("--alloc-policy").and_then(|v| v.as_deref()) {
            None => Ok(AllocPolicyKind::default()),
            Some(s) => AllocPolicyKind::parse(s)
                .ok_or_else(|| err(format!("bad --alloc-policy {s:?} (lowfat|rand-lowfat)"))),
        }
    }

    /// Daemon socket path: `--socket <path>` (required for the service
    /// commands).
    fn socket(&self) -> Result<&str, CliError> {
        self.flags
            .get("--socket")
            .and_then(|v| v.as_deref())
            .ok_or_else(|| err("missing --socket <path>"))
    }

    /// Worker thread count: `--threads N`, then `REDFAT_THREADS`, then
    /// the available parallelism.
    fn threads(&self) -> Result<usize, CliError> {
        let explicit = match self.flags.get("--threads").and_then(|v| v.as_deref()) {
            None => None,
            Some(s) => Some(
                s.parse::<usize>()
                    .map_err(|e| err(format!("bad --threads: {e}")))?,
            ),
        };
        Ok(resolve_threads(explicit))
    }
}

fn load_image(path: &str) -> Result<Image, CliError> {
    let bytes = std::fs::read(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    Image::parse(&bytes).map_err(|e| err(format!("{path}: {e}")))
}

fn save_image(image: &Image, path: &str) -> Result<(), CliError> {
    std::fs::write(path, image.to_bytes()).map_err(|e| err(format!("cannot write {path}: {e}")))
}

fn harden_config(args: &Args) -> Result<HardenConfig, CliError> {
    let policy = if args.has("--redzone-only") {
        LowFatPolicy::Disabled
    } else if let Some(Some(path)) = args.flags.get("--allowlist") {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        LowFatPolicy::AllowList(AllowList::from_text(&text).map_err(err)?)
    } else {
        LowFatPolicy::All
    };
    let mut cfg = HardenConfig::with_redundant(policy);
    if args.has("--no-elim") {
        // The flow passes refine `elim`; disabling it disables them too.
        cfg.elim = false;
        cfg.elim_flow = false;
    }
    if args.has("--no-flow") {
        cfg.elim_flow = false;
    }
    if args.has("--no-flow") || args.has("--no-redundant") || args.has("--no-elim") {
        cfg.elim_redundant = false;
    }
    if args.has("--no-batch") {
        cfg.batch = false;
    }
    if args.has("--no-merge") {
        cfg.merge = false;
    }
    if args.has("--no-size") {
        cfg.size_harden = false;
    }
    if args.has("--writes-only") {
        cfg.instrument_reads = false;
    }
    if args.has("--lowfat-only") {
        cfg.lowfat_only = true;
    }
    // Interprocedural summaries ride on the flow pass; requesting them
    // alongside --no-flow/--no-elim is a contradiction worth rejecting
    // rather than silently ignoring.
    if args.has("--interproc") {
        if !cfg.elim_flow {
            return Err(err(
                "--interproc requires the flow pass (drop --no-flow/--no-elim)",
            ));
        }
        cfg.interproc = true;
    }
    cfg.alloc_policy = args.alloc_policy()?;
    Ok(cfg)
}

/// Executes one CLI invocation; returns the stdout text.
pub fn run_cli(argv: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = argv.split_first() else {
        return Err(err(USAGE));
    };
    let args = parse_args(rest)?;
    let mut out = String::new();

    match cmd.as_str() {
        "compile" => {
            let [src] = &args.positional[..] else {
                return Err(err("compile needs exactly one source file"));
            };
            let text =
                std::fs::read_to_string(src).map_err(|e| err(format!("cannot read {src}: {e}")))?;
            let image = redfat_minic::compile(&text).map_err(|e| err(e.to_string()))?;
            save_image(&image, args.out()?)?;
            let code: u64 = image.exec_segments().map(|s| s.data.len() as u64).sum();
            writeln!(out, "compiled {src}: {code} bytes of code").ok();
        }
        "harden" => {
            let [input] = &args.positional[..] else {
                return Err(err("harden needs exactly one input binary"));
            };
            let mut image = load_image(input)?;
            if args.has("--strip") {
                image.strip();
            }
            let cfg = harden_config(&args)?;
            let hardened =
                harden_threaded(&image, &cfg, args.threads()?).map_err(|e| err(e.to_string()))?;
            save_image(&hardened.image, args.out()?)?;
            let s = hardened.stats;
            writeln!(
                out,
                "hardened {input}: {} sites ({} full, {} redzone-only, {} eliminated, \
                 {} flow-eliminated, {} interproc-eliminated, {} redundant), \
                 {} trampolines ({} jmp, {} int3), {} trampoline bytes",
                s.sites_considered,
                s.sites_lowfat,
                s.sites_redzone,
                s.sites_eliminated,
                s.sites_eliminated_flow,
                s.sites_eliminated_interproc,
                s.sites_redundant,
                s.batches,
                s.rewrite.jmp_patches,
                s.rewrite.trap_patches,
                s.rewrite.trampoline_bytes
            )
            .ok();
        }
        "profile" => {
            let [input] = &args.positional[..] else {
                return Err(err("profile needs exactly one input binary"));
            };
            let image = load_image(input)?;
            let prof = instrument_profile(&image).map_err(|e| err(e.to_string()))?;
            save_image(&prof.image, args.out()?)?;
            writeln!(
                out,
                "profiling binary written: {} instrumented sites",
                prof.stats.sites_lowfat
            )
            .ok();
        }
        "genlist" => {
            let [prof] = &args.positional[..] else {
                return Err(err("genlist needs exactly one profiling binary"));
            };
            let image = load_image(prof)?;
            let run = try_run_once(
                &image,
                args.input_values()?,
                ErrorMode::Log,
                args.max_steps()?,
            )
            .map_err(|e| err(format!("cannot load {prof}: {e}")))?;
            if !matches!(run.result, RunResult::Exited(_)) {
                return Err(err(format!("profiling run did not exit: {:?}", run.result)));
            }
            let allow = collect_allowlist(&run.profile);
            std::fs::write(args.out()?, allow.to_text())
                .map_err(|e| err(format!("cannot write allow-list: {e}")))?;
            writeln!(
                out,
                "observed {} sites, allow-listed {}",
                run.profile.len(),
                allow.len()
            )
            .ok();
        }
        "fuzzlist" => {
            let [input] = &args.positional[..] else {
                return Err(err("fuzzlist needs exactly one binary"));
            };
            let image = load_image(input)?;
            let iters = match args.flags.get("--iters").and_then(|v| v.as_deref()) {
                None => 200,
                Some(s) => s.parse().map_err(|e| err(format!("bad --iters: {e}")))?,
            };
            let seeds = vec![args.input_values()?];
            let outcome = redfat_core::fuzz_profile(
                &image,
                &seeds,
                &redfat_core::FuzzConfig {
                    iterations: iters,
                    max_steps: args.max_steps()?,
                    ..redfat_core::FuzzConfig::default()
                },
            )
            .map_err(|e| err(e.to_string()))?;
            let allow = collect_allowlist(&outcome.profile);
            std::fs::write(args.out()?, allow.to_text())
                .map_err(|e| err(format!("cannot write allow-list: {e}")))?;
            writeln!(
                out,
                "{} executions, corpus {}, observed {} sites, allow-listed {}",
                outcome.executions,
                outcome.corpus.len(),
                outcome.profile.len(),
                allow.len()
            )
            .ok();
        }
        "run" => {
            let [input] = &args.positional[..] else {
                return Err(err("run needs exactly one binary"));
            };
            let image = load_image(input)?;
            let inputs = args.input_values()?;
            let steps = args.max_steps()?;
            let backend = args.backend()?;
            if args.has("--memcheck") {
                let rt = MemcheckRuntime::new(ErrorMode::Log).with_input(inputs);
                let mut emu = Emu::load_image(&image, rt)
                    .map_err(|e| err(format!("cannot load {input}: {e}")))?;
                emu.cost = MemcheckRuntime::cost_model();
                let r = emu.run_backend(backend, steps);
                writeln!(out, "memcheck: {r:?}").ok();
                for e in &emu.runtime.errors {
                    writeln!(out, "memcheck error: {e}").ok();
                }
                writeln!(
                    out,
                    "instructions {}  cycles {}",
                    emu.counters.instructions, emu.counters.cycles
                )
                .ok();
                if args.has("--stats") {
                    writeln!(out, "trace-cache: {}", emu.trace_stats()).ok();
                }
            } else {
                let mode = if args.has("--log") {
                    ErrorMode::Log
                } else {
                    ErrorMode::Abort
                };
                let result = try_run_backend_policy(
                    &image,
                    inputs,
                    mode,
                    backend,
                    steps,
                    args.alloc_policy()?,
                )
                .map_err(|e| err(format!("cannot load {input}: {e}")))?;
                writeln!(out, "{:?}", result.result).ok();
                for v in &result.io.out_ints {
                    writeln!(out, "{v}").ok();
                }
                if !result.io.out_bytes.is_empty() {
                    writeln!(out, "{}", String::from_utf8_lossy(&result.io.out_bytes)).ok();
                }
                for e in &result.errors {
                    writeln!(out, "error: {}", symbolize(&image, e)).ok();
                }
                writeln!(
                    out,
                    "instructions {}  cycles {}",
                    result.counters.instructions, result.counters.cycles
                )
                .ok();
                if args.has("--stats") {
                    writeln!(out, "trace-cache: {}", result.trace_stats).ok();
                }
            }
        }
        "disasm" => {
            let [input] = &args.positional[..] else {
                return Err(err("disasm needs exactly one binary"));
            };
            let image = load_image(input)?;
            let d = redfat_analysis::disassemble(&image);
            for (addr, inst, _) in d.iter() {
                writeln!(out, "{addr:#x}: {inst}").ok();
            }
            for (start, end) in &d.unknown {
                writeln!(out, "{start:#x}..{end:#x}: <undecodable>").ok();
            }
        }
        "analyze" => {
            let [input] = &args.positional[..] else {
                return Err(err("analyze needs exactly one binary"));
            };
            let image = load_image(input)?;
            if args.has("--callgraph") {
                let d = redfat_analysis::disassemble(&image);
                let cfg = redfat_analysis::Cfg::recover(&d, image.entry, &[]);
                let roots = redfat_analysis::unknown_entries(&d, &cfg, image.entry);
                let sums = redfat_analysis::Summaries::compute(&d, &cfg, &roots);
                out.push_str(&redfat_analysis::render_callgraph(&sums));
                out.push('\n');
                out.push_str(&redfat_analysis::render_callgraph_dot(&sums));
            } else {
                let opts = redfat_analysis::AnalyzeOptions {
                    threads: args.threads()?,
                    interproc: args.has("--interproc"),
                };
                let report = redfat_analysis::analyze_image_opts(&image, opts);
                out.push_str(&redfat_analysis::report::render(&report));
            }
        }
        "stats" => {
            let [input] = &args.positional[..] else {
                return Err(err("stats needs exactly one binary"));
            };
            let image = load_image(input)?;
            let d = redfat_analysis::disassemble(&image);
            let cfg = redfat_analysis::Cfg::recover(&d, image.entry, &[]);
            let accesses = d
                .iter()
                .filter(|(_, i, _)| i.memory_access().is_some())
                .count();
            let eliminable = d
                .iter()
                .filter(|(_, i, _)| {
                    i.memory_access()
                        .is_some_and(|m| !redfat_analysis::can_reach_heap(&m))
                })
                .count();
            writeln!(out, "kind:            {:?}", image.kind).ok();
            writeln!(out, "entry:           {:#x}", image.entry).ok();
            writeln!(out, "segments:        {}", image.segments.len()).ok();
            writeln!(out, "memory:          {} bytes", image.memory_footprint()).ok();
            writeln!(out, "symbols:         {}", image.symbols.len()).ok();
            writeln!(out, "instructions:    {}", d.len()).ok();
            writeln!(out, "basic blocks:    {}", cfg.blocks.len()).ok();
            writeln!(out, "memory accesses: {accesses}").ok();
            writeln!(out, "eliminable:      {eliminable}").ok();
        }
        "selftest" => {
            let quick = args.has("--quick");
            let superblock = args.has("--superblock");
            let fast = args.has("--fast");
            if args.has("--faults") {
                run_faults(quick, args.threads()?, &mut out)?;
            } else {
                run_selftest(
                    quick,
                    superblock,
                    fast,
                    args.alloc_policy()?,
                    args.threads()?,
                    &mut out,
                )?;
            }
        }
        "serve" => {
            let socket = args.socket()?.to_string();
            let cache_dir = match args.flags.get("--cache-dir").and_then(|v| v.as_deref()) {
                Some(d) => d.to_string(),
                None => format!("{socket}.cache"),
            };
            let workers = match args.flags.get("--workers").and_then(|v| v.as_deref()) {
                None => 2,
                Some(s) => s.parse().map_err(|e| err(format!("bad --workers: {e}")))?,
            };
            let server = redfat_service::Server::bind(redfat_service::ServerConfig {
                socket: socket.clone().into(),
                cache_dir: cache_dir.into(),
                workers,
                threads: args.threads()?,
            })
            .map_err(|e| err(format!("cannot bind {socket}: {e}")))?;
            let stats = server
                .run()
                .map_err(|e| err(format!("daemon failed: {e}")))?;
            writeln!(out, "daemon exited; final counters:").ok();
            out.push_str(&stats);
        }
        "submit" => {
            let [input] = &args.positional[..] else {
                return Err(err("submit needs exactly one input binary"));
            };
            let op = match args.flags.get("--op").and_then(|v| v.as_deref()) {
                None | Some("harden") => redfat_service::Op::Harden,
                Some("analyze") => redfat_service::Op::Analyze,
                Some("profile") => redfat_service::Op::Profile,
                Some(other) => {
                    return Err(err(format!("bad --op {other:?} (harden|analyze|profile)")))
                }
            };
            let cfg = harden_config(&args)?;
            let image_bytes =
                std::fs::read(input).map_err(|e| err(format!("cannot read {input}: {e}")))?;
            let mut client = redfat_service::Client::connect(args.socket()?)
                .map_err(|e| err(format!("cannot connect to daemon: {e}")))?;
            match client
                .job(op, cfg.canonical_bytes(), image_bytes)
                .map_err(|e| err(format!("submit failed: {e}")))?
            {
                redfat_service::Response::Ok {
                    source,
                    micros,
                    stats,
                    artifact,
                } => {
                    let source = match source {
                        redfat_service::Source::Computed => "computed",
                        redfat_service::Source::ArtifactHit => "artifact-hit",
                        redfat_service::Source::Deduped => "deduped",
                    };
                    if let Some(Some(path)) = args.flags.get("-o") {
                        std::fs::write(path, &artifact)
                            .map_err(|e| err(format!("cannot write {path}: {e}")))?;
                    }
                    writeln!(
                        out,
                        "{input}: {source} in {micros}us, {} artifact bytes",
                        artifact.len()
                    )
                    .ok();
                    out.push_str(&stats);
                }
                redfat_service::Response::Err(e) => {
                    return Err(err(format!("daemon refused job: {e}")))
                }
            }
        }
        "svcstats" => {
            let mut client = redfat_service::Client::connect(args.socket()?)
                .map_err(|e| err(format!("cannot connect to daemon: {e}")))?;
            let stats = client
                .stats()
                .map_err(|e| err(format!("stats failed: {e}")))?;
            out.push_str(&stats);
        }
        "shutdown" => {
            let mut client = redfat_service::Client::connect(args.socket()?)
                .map_err(|e| err(format!("cannot connect to daemon: {e}")))?;
            client
                .shutdown()
                .map_err(|e| err(format!("shutdown failed: {e}")))?;
            writeln!(out, "daemon asked to shut down").ok();
        }
        "--help" | "-h" | "help" => {
            writeln!(out, "{USAGE}").ok();
        }
        other => return Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
    Ok(out)
}

/// The `selftest --faults` subcommand: the deterministic
/// fault-injection sweep.
///
/// Mutates well-formed images from every SPEC stand-in (truncations,
/// header/code/metadata byte flips, oversized table counts, corrupt
/// trap tables) and drives each mutant through the full
/// parse → harden → load → run chain. Every outcome must classify as
/// ok, a structured error, or a recorded degradation -- a panic
/// anywhere fails the invocation with a nonzero exit code, so CI can
/// gate on `redfat selftest --faults --quick`.
fn run_faults(quick: bool, threads: usize, out: &mut String) -> Result<(), CliError> {
    use redfat_core::{fault_sweep, FaultConfig};
    let config = FaultConfig {
        // Quick ≈ a 1k-mutant sweep (35 x 29 stand-ins); full is ~3.5k.
        mutants_per_workload: if quick { 35 } else { 120 },
        ..FaultConfig::default()
    };
    let report = fault_sweep(&config, threads);
    writeln!(
        out,
        "faults: {} mutants (seed {:#x}): {} ok, {} errors, {} degraded",
        report.cases, config.seed, report.ok, report.errors, report.degraded
    )
    .ok();
    for (stage, n) in &report.by_stage {
        writeln!(out, "  stage {stage}: {n} errors").ok();
    }
    if report.clean() {
        writeln!(out, "fault sweep passed").ok();
        Ok(())
    } else {
        Err(CliError {
            message: format!(
                "{out}fault sweep FAILED ({} unclassified):\n{}",
                report.failures.len(),
                report.failures.join("\n")
            ),
            code: 1,
        })
    }
}

/// The `selftest` subcommand: the differential self-test subsystem.
///
/// Runs the deterministic encoder/decoder round-trip fuzzer, the
/// allocator invariant checker, and the lockstep divergence oracle over
/// every SPEC stand-in plus a Juliet sample. With `superblock`, every
/// stand-in additionally runs the superblock and trace-linked execution
/// backends against the single-step reference interpreter on both the
/// baseline and the hardened image; `fast` adds the fast tier's
/// boundary-audit oracle ([`redfat_core::selftest::backend_lockstep`]
/// with [`ExecBackend::Fast`]) to that sweep. Any failure shrinks to a
/// minimal repro and fails the invocation with a nonzero exit code, so
/// CI can gate on `redfat selftest --quick`.
fn run_selftest(
    quick: bool,
    superblock: bool,
    fast: bool,
    policy: AllocPolicyKind,
    threads: usize,
    out: &mut String,
) -> Result<(), CliError> {
    use redfat_core::selftest::{
        allocator_invariants, backend_lockstep_policy, lockstep_images_policy, roundtrip_fuzz,
    };
    let mut failures: Vec<String> = Vec::new();
    writeln!(out, "alloc-policy: {policy}").ok();

    // Instruction round-trip: decode(encode(i)) == i, byte-identical.
    let rt_cases = if quick { 2_000 } else { 10_000 };
    let rt = roundtrip_fuzz(rt_cases, 0xDEC0_DE00_0BAD_CAFE);
    writeln!(
        out,
        "roundtrip: {} cases, {} failures",
        rt.cases,
        rt.failures.len()
    )
    .ok();
    for f in rt.failures.iter().take(8) {
        failures.push(format!("roundtrip: {f}"));
    }

    // Allocator metadata invariants (redzones, canaries, size classes).
    let alloc_cases = if quick { 300 } else { 1_000 };
    let ar = allocator_invariants(alloc_cases, 0xA110_C000_5EED_0001);
    writeln!(
        out,
        "allocator: {} cases, {} failures",
        ar.cases,
        ar.failures.len()
    )
    .ok();
    for f in ar.failures.iter().take(8) {
        failures.push(format!("allocator: {f}"));
    }

    // Lockstep oracle over the SPEC stand-ins.
    let max_steps: u64 = if quick { 50_000_000 } else { 400_000_000 };
    // Run the oracle against the most aggressive elimination tier so the
    // interprocedural summaries are exercised differentially, not just by
    // unit tests.
    let config = HardenConfig::with_interproc(LowFatPolicy::All);
    for w in redfat_workloads::spec::all() {
        let image = w.image();
        let input = if quick {
            w.train_input.clone()
        } else {
            w.ref_input.clone()
        };
        let hardened = harden_threaded(&image, &config, threads)
            .map_err(|e| err(format!("selftest: hardening {} failed: {e}", w.name)))?;
        if superblock || fast {
            // Audit the translated backends: the superblock tier and
            // the trace-linked tier (chaining + inline caches + dead-
            // flag elision fully enabled) under `--superblock`, plus
            // the fast tier's boundary-audit oracle under `--fast`.
            let mut backends = Vec::new();
            if superblock {
                backends.extend([ExecBackend::Superblock, ExecBackend::Trace]);
            }
            if fast {
                backends.push(ExecBackend::Fast);
            }
            for backend in backends {
                for (kind, img) in [("baseline", &image), ("hardened", &hardened.image)] {
                    let rep = backend_lockstep_policy(img, &input, backend, max_steps, policy);
                    writeln!(
                        out,
                        "backend  {:<14} {:<10} {kind:<8} {:>9} blocks, {} divergences{}",
                        w.name,
                        backend.to_string(),
                        rep.blocks,
                        rep.divergences.len(),
                        if rep.completed { "" } else { " (incomplete)" }
                    )
                    .ok();
                    if !rep.clean() || !rep.completed {
                        let detail = rep
                            .divergences
                            .first()
                            .map(|d| d.detail.clone())
                            .unwrap_or_else(|| {
                                "run did not complete within the step budget".into()
                            });
                        failures.push(format!("backend {} {backend} ({kind}):\n{detail}", w.name));
                    }
                }
            }
        }
        let rep = lockstep_images_policy(
            &image,
            &hardened.image,
            &hardened.clobbers,
            &input,
            max_steps,
            policy,
        );
        writeln!(
            out,
            "lockstep {:<14} {:>9} synced, {} divergences, {} check reports{}",
            w.name,
            rep.synced,
            rep.divergences.len(),
            rep.hardened_errors,
            if rep.completed { "" } else { " (incomplete)" }
        )
        .ok();
        if !rep.clean() || !rep.completed {
            let shrunk = redfat_core::selftest::shrink_input_policy(
                &image,
                &hardened.image,
                &hardened.clobbers,
                &input,
                max_steps,
                policy,
            );
            let rep2 = lockstep_images_policy(
                &image,
                &hardened.image,
                &hardened.clobbers,
                &shrunk,
                max_steps,
                policy,
            );
            let detail = rep2
                .divergences
                .first()
                .or(rep.divergences.first())
                .map(|d| d.detail.clone())
                .unwrap_or_else(|| "run did not complete within the step budget".into());
            failures.push(format!(
                "lockstep {} (input {:?}):\n{}",
                w.name, shrunk, detail
            ));
        }
    }

    // Juliet sample: benign and attack inputs both stay in lockstep (the
    // hardened run reports the planted errors but, in Log mode, continues
    // identically).
    let stride = if quick { 96 } else { 48 };
    let cases = redfat_workloads::juliet::generate();
    let mut jl_runs = 0usize;
    let mut jl_divergent = 0usize;
    let mut jl_reports = 0usize;
    for case in cases.iter().step_by(stride) {
        let image = case.workload.image();
        let hardened = harden_threaded(&image, &config, threads).map_err(|e| {
            err(format!(
                "selftest: hardening juliet {} failed: {e}",
                case.id
            ))
        })?;
        for input in [&case.benign_input, &case.attack_input] {
            let rep = lockstep_images_policy(
                &image,
                &hardened.image,
                &hardened.clobbers,
                input,
                max_steps,
                policy,
            );
            jl_runs += 1;
            jl_reports += rep.hardened_errors;
            if !rep.clean() || !rep.completed {
                jl_divergent += 1;
                let detail = rep
                    .divergences
                    .first()
                    .map(|d| d.detail.clone())
                    .unwrap_or_else(|| "run did not complete within the step budget".into());
                failures.push(format!("juliet {} (input {input:?}):\n{detail}", case.id));
            }
        }
    }
    writeln!(
        out,
        "juliet: {jl_runs} runs ({} cases), {jl_divergent} divergent, {jl_reports} check reports",
        cases.iter().step_by(stride).count()
    )
    .ok();

    if failures.is_empty() {
        writeln!(out, "selftest passed").ok();
        Ok(())
    } else {
        Err(CliError {
            message: format!("{out}selftest FAILED:\n{}", failures.join("\n")),
            code: 1,
        })
    }
}

/// Renders a memory error with the enclosing function name when the
/// image still carries symbols (bug-finding deployments keep them).
pub fn symbolize(image: &Image, e: &redfat_emu::MemoryError) -> String {
    let mut best: Option<(&str, u64)> = None;
    for s in &image.symbols {
        if s.value <= e.site {
            match best {
                Some((_, v)) if v >= s.value => {}
                _ => best = Some((&s.name, s.value)),
            }
        }
    }
    match best {
        Some((name, v)) => format!("{e} in {name}+{:#x}", e.site - v),
        None => e.to_string(),
    }
}
