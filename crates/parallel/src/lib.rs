//! Shared scoped-thread work distribution and small numeric helpers.
//!
//! Hoisted out of `redfat-bench` so the hardening pipeline
//! (`redfat-core`) and the CLI can use the same machinery without
//! depending on the experiment harness; `redfat_bench` re-exports
//! everything here for its bins and tests.

/// Geometric mean helper.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

/// Extracts the human-readable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Runs `f(&items[i])` under `catch_unwind`, mapping a panic to the
/// canonical `"item {i} panicked: {msg}"` error string. Shared by the
/// threaded and serial paths of [`try_parallel_map`] so the observable
/// failure shape is identical in both.
fn catch_item<T, U>(i: usize, item: &T, f: impl Fn(&T) -> U) -> Result<U, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item)))
        .map_err(|payload| format!("item {i} panicked: {}", panic_message(&*payload)))
}

/// Runs closures in parallel over a work list with scoped threads,
/// preserving input order in the output. Each slot is `Err` with the
/// item's index and panic message if its closure panicked; a poisoned
/// item never prevents the other items from completing and reporting.
///
/// With `threads <= 1` no worker thread is spawned at all: the items
/// run serially on the *calling* thread (same `ThreadId`), with the
/// same per-item `catch_unwind` isolation and error format. This keeps
/// `--threads 1` a true baseline -- no scope/channel setup, no
/// thread-spawn cost, and thread-local state on the caller stays
/// visible to the closures.
pub fn try_parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Result<U, String>>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| catch_item(i, item, &f))
            .collect();
    }
    let n = items.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<U, String>)>();
    let items_ref = &items;
    let f_ref = &f;
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = catch_item(i, &items_ref[i], f_ref);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<Result<U, String>>> = (0..n).map(|_| None).collect();
        for (i, out) in rx {
            results[i] = Some(out);
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| Err(format!("item {i}: no result reported"))))
            .collect()
    })
}

/// Runs closures in parallel over a work list with scoped threads,
/// preserving input order in the output.
///
/// # Panics
///
/// Panics after *all* items have finished if any closure panicked,
/// naming every failed item -- completed work is never thrown away
/// mid-run by one bad item.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let results = try_parallel_map(items, threads, f);
    let failures: Vec<&str> = results
        .iter()
        .filter_map(|r| r.as_ref().err().map(|s| s.as_str()))
        .collect();
    if !failures.is_empty() {
        panic!(
            "parallel_map: {}/{} items failed:\n  {}",
            failures.len(),
            n,
            failures.join("\n  ")
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("failures checked above"))
        .collect()
}

/// Number of worker threads implied by the machine: `available_parallelism`,
/// falling back to 1 when the runtime cannot tell.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves the effective thread count from an explicit request (CLI
/// `--threads`), the `REDFAT_THREADS` environment variable, or the
/// machine's available parallelism, in that priority order. Zero or
/// unparsable requests fall through to the next source.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    if let Ok(v) = std::env::var("REDFAT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// Scans an argv-style iterator for `--threads N` and resolves the
/// thread count with [`resolve_threads`]. Convenience for the bench
/// bins, which otherwise take no arguments.
pub fn threads_from_args(args: impl IntoIterator<Item = String>) -> usize {
    let mut explicit = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            explicit = it.next().and_then(|v| v.parse::<usize>().ok());
        } else if let Some(v) = a.strip_prefix("--threads=") {
            explicit = v.parse::<usize>().ok();
        }
    }
    resolve_threads(explicit)
}

/// A long-lived pool of worker threads for job-at-a-time scheduling --
/// the service daemon's compute backend. [`try_parallel_map`] spins up
/// scoped threads per call, which is right for one batch of homogeneous
/// items; a daemon instead receives heterogeneous jobs over time and
/// wants submission to return immediately with a handle.
///
/// Jobs run under `catch_unwind`: a panicking job resolves its handle
/// to `Err(message)` and the worker survives to take the next job.
/// Dropping the pool finishes queued jobs and joins the workers.
pub struct WorkerPool {
    shared: std::sync::Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: std::sync::Mutex<PoolQueue>,
    available: std::sync::Condvar,
}

struct PoolQueue {
    jobs: std::collections::VecDeque<Job>,
    shutdown: bool,
}

/// Receives the result of a job submitted to a [`WorkerPool`].
pub struct JobHandle<T> {
    rx: std::sync::mpsc::Receiver<Result<T, String>>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job finishes. `Err` carries the panic message
    /// if the job panicked, or a disconnect notice if the pool was torn
    /// down before the job ran.
    pub fn join(self) -> Result<T, String> {
        self.rx
            .recv()
            .unwrap_or_else(|_| Err("worker pool shut down before the job ran".to_string()))
    }
}

impl WorkerPool {
    /// Starts a pool with `workers` threads (minimum 1).
    pub fn new(workers: usize) -> WorkerPool {
        let shared = std::sync::Arc::new(PoolShared {
            queue: std::sync::Mutex::new(PoolQueue {
                jobs: std::collections::VecDeque::new(),
                shutdown: false,
            }),
            available: std::sync::Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("redfat-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("spawning worker {i}: {e}"))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` and returns a handle to its result. Submission
    /// never blocks on job execution; the queue is unbounded (callers
    /// wanting admission control gate before submitting).
    pub fn submit<T, F>(&self, job: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (tx, rx) = std::sync::mpsc::channel();
        let wrapped: Job = Box::new(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job))
                .map_err(|payload| format!("job panicked: {}", panic_message(&*payload)));
            // The submitter may have dropped the handle; a dead
            // receiver just discards the result.
            let _ = tx.send(result);
        });
        {
            let mut q = lock_queue(&self.shared);
            if q.shutdown {
                // Between submit and shutdown only Drop flips this, and
                // Drop takes &mut self -- but keep the path total.
                drop(q);
                return JobHandle { rx };
            }
            q.jobs.push_back(wrapped);
        }
        self.shared.available.notify_one();
        JobHandle { rx }
    }
}

/// Locks the pool queue, riding through poisoning: the queue is never
/// left mid-update (single push/pop per critical section), and a
/// panicking job is already contained by `catch_unwind` inside the job
/// wrapper, so a poisoned mutex here only means some unrelated thread
/// died mid-lock.
fn lock_queue(shared: &PoolShared) -> std::sync::MutexGuard<'_, PoolQueue> {
    match shared.queue.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut q = lock_queue(shared);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = match shared.available.wait(q) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        job();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        lock_queue(&self.shared).shutdown = true;
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            // A worker that panicked outside a job is already dead;
            // joining it returns the payload, which Drop must swallow
            // (double panic would abort).
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_pool_runs_jobs_and_returns_results() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.workers(), 4);
        let handles: Vec<JobHandle<u64>> = (0..32u64).map(|i| pool.submit(move || i * i)).collect();
        for (i, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join(), Ok((i * i) as u64));
        }
    }

    #[test]
    fn worker_pool_contains_panics_and_survives() {
        let pool = WorkerPool::new(2);
        let bad = pool.submit(|| -> u32 { panic!("job exploded") });
        let err = bad.join().expect_err("panicking job must fail");
        assert!(err.contains("job exploded"), "message preserved: {err}");
        // The pool keeps working after a contained panic.
        let good = pool.submit(|| 7u32);
        assert_eq!(good.join(), Ok(7));
    }

    #[test]
    fn worker_pool_drop_finishes_queued_jobs() {
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(1);
            for _ in 0..16 {
                let c = counter.clone();
                // Fire-and-forget: handles dropped immediately.
                let _ = pool.submit(move || {
                    c.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
        } // Drop joins; queued jobs must all have run.
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 16);
    }

    #[test]
    fn worker_pool_zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.submit(|| 1u8).join(), Ok(1));
    }

    #[test]
    fn poisoned_item_does_not_sink_the_rest() {
        let items: Vec<u32> = (0..8).collect();
        let results = try_parallel_map(items, 4, |&v| {
            if v == 3 {
                panic!("poisoned workload {v}");
            }
            v * 10
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().expect_err("item 3 must fail");
                assert!(err.contains("item 3"), "error names the item: {err}");
                assert!(
                    err.contains("poisoned workload 3"),
                    "error keeps message: {err}"
                );
            } else {
                assert_eq!(*r, Ok(i as u32 * 10), "item {i} must still complete");
            }
        }
    }

    #[test]
    fn single_thread_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let results = try_parallel_map((0..4).collect::<Vec<u32>>(), 1, |&v| {
            (std::thread::current().id(), v * 10)
        });
        for (i, r) in results.iter().enumerate() {
            let (tid, v) = r.as_ref().expect("no panics");
            assert_eq!(*tid, caller, "item {i} must run on the caller's thread");
            assert_eq!(*v, i as u32 * 10);
        }
        // threads == 0 takes the same serial path.
        let results = try_parallel_map(vec![7u32], 0, |_| std::thread::current().id());
        assert_eq!(results[0], Ok(caller));
    }

    #[test]
    fn single_thread_keeps_per_item_panic_isolation() {
        let results = try_parallel_map((0..4).collect::<Vec<u32>>(), 1, |&v| {
            if v == 2 {
                panic!("boom {v}");
            }
            v
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[1], Ok(1));
        let err = results[2].as_ref().expect_err("item 2 must fail");
        assert_eq!(err, "item 2 panicked: boom 2");
        assert_eq!(results[3], Ok(3), "later items still run after a panic");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..32).collect();
        let doubled = parallel_map(items, 5, |&v| v * 2);
        assert_eq!(doubled, (0..32).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_threads_priority() {
        // Explicit beats everything.
        assert_eq!(resolve_threads(Some(3)), 3);
        // Zero falls through to env/default, which is at least 1.
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn threads_from_args_parses_both_forms() {
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_from_args(argv(&["--threads", "7"])), 7);
        assert_eq!(threads_from_args(argv(&["--threads=5"])), 5);
    }
}
