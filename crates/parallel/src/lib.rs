//! Shared scoped-thread work distribution and small numeric helpers.
//!
//! Hoisted out of `redfat-bench` so the hardening pipeline
//! (`redfat-core`) and the CLI can use the same machinery without
//! depending on the experiment harness; `redfat_bench` re-exports
//! everything here for its bins and tests.

/// Geometric mean helper.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 0.0;
    }
    (log_sum / n as f64).exp()
}

/// Runs `f(&items[i])` under `catch_unwind`, mapping a panic to the
/// canonical `"item {i} panicked: {msg}"` error string. Shared by the
/// threaded and serial paths of [`try_parallel_map`] so the observable
/// failure shape is identical in both.
fn catch_item<T, U>(i: usize, item: &T, f: impl Fn(&T) -> U) -> Result<U, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(|payload| {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        format!("item {i} panicked: {msg}")
    })
}

/// Runs closures in parallel over a work list with scoped threads,
/// preserving input order in the output. Each slot is `Err` with the
/// item's index and panic message if its closure panicked; a poisoned
/// item never prevents the other items from completing and reporting.
///
/// With `threads <= 1` no worker thread is spawned at all: the items
/// run serially on the *calling* thread (same `ThreadId`), with the
/// same per-item `catch_unwind` isolation and error format. This keeps
/// `--threads 1` a true baseline -- no scope/channel setup, no
/// thread-spawn cost, and thread-local state on the caller stays
/// visible to the closures.
pub fn try_parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<Result<U, String>>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    if threads <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| catch_item(i, item, &f))
            .collect();
    }
    let n = items.len();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel::<(usize, Result<U, String>)>();
    let items_ref = &items;
    let f_ref = &f;
    let next_ref = &next;
    std::thread::scope(|scope| {
        for _ in 0..threads.max(1) {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let i = next_ref.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = catch_item(i, &items_ref[i], f_ref);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut results: Vec<Option<Result<U, String>>> = (0..n).map(|_| None).collect();
        for (i, out) in rx {
            results[i] = Some(out);
        }
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.unwrap_or_else(|| Err(format!("item {i}: no result reported"))))
            .collect()
    })
}

/// Runs closures in parallel over a work list with scoped threads,
/// preserving input order in the output.
///
/// # Panics
///
/// Panics after *all* items have finished if any closure panicked,
/// naming every failed item -- completed work is never thrown away
/// mid-run by one bad item.
pub fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let results = try_parallel_map(items, threads, f);
    let failures: Vec<&str> = results
        .iter()
        .filter_map(|r| r.as_ref().err().map(|s| s.as_str()))
        .collect();
    if !failures.is_empty() {
        panic!(
            "parallel_map: {}/{} items failed:\n  {}",
            failures.len(),
            n,
            failures.join("\n  ")
        );
    }
    results
        .into_iter()
        .map(|r| r.expect("failures checked above"))
        .collect()
}

/// Number of worker threads implied by the machine: `available_parallelism`,
/// falling back to 1 when the runtime cannot tell.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves the effective thread count from an explicit request (CLI
/// `--threads`), the `REDFAT_THREADS` environment variable, or the
/// machine's available parallelism, in that priority order. Zero or
/// unparsable requests fall through to the next source.
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    if let Some(n) = explicit {
        if n > 0 {
            return n;
        }
    }
    if let Ok(v) = std::env::var("REDFAT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    available_threads()
}

/// Scans an argv-style iterator for `--threads N` and resolves the
/// thread count with [`resolve_threads`]. Convenience for the bench
/// bins, which otherwise take no arguments.
pub fn threads_from_args(args: impl IntoIterator<Item = String>) -> usize {
    let mut explicit = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            explicit = it.next().and_then(|v| v.parse::<usize>().ok());
        } else if let Some(v) = a.strip_prefix("--threads=") {
            explicit = v.parse::<usize>().ok();
        }
    }
    resolve_threads(explicit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_item_does_not_sink_the_rest() {
        let items: Vec<u32> = (0..8).collect();
        let results = try_parallel_map(items, 4, |&v| {
            if v == 3 {
                panic!("poisoned workload {v}");
            }
            v * 10
        });
        assert_eq!(results.len(), 8);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().expect_err("item 3 must fail");
                assert!(err.contains("item 3"), "error names the item: {err}");
                assert!(
                    err.contains("poisoned workload 3"),
                    "error keeps message: {err}"
                );
            } else {
                assert_eq!(*r, Ok(i as u32 * 10), "item {i} must still complete");
            }
        }
    }

    #[test]
    fn single_thread_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let results = try_parallel_map((0..4).collect::<Vec<u32>>(), 1, |&v| {
            (std::thread::current().id(), v * 10)
        });
        for (i, r) in results.iter().enumerate() {
            let (tid, v) = r.as_ref().expect("no panics");
            assert_eq!(*tid, caller, "item {i} must run on the caller's thread");
            assert_eq!(*v, i as u32 * 10);
        }
        // threads == 0 takes the same serial path.
        let results = try_parallel_map(vec![7u32], 0, |_| std::thread::current().id());
        assert_eq!(results[0], Ok(caller));
    }

    #[test]
    fn single_thread_keeps_per_item_panic_isolation() {
        let results = try_parallel_map((0..4).collect::<Vec<u32>>(), 1, |&v| {
            if v == 2 {
                panic!("boom {v}");
            }
            v
        });
        assert_eq!(results[0], Ok(0));
        assert_eq!(results[1], Ok(1));
        let err = results[2].as_ref().expect_err("item 2 must fail");
        assert_eq!(err, "item 2 panicked: boom 2");
        assert_eq!(results[3], Ok(3), "later items still run after a panic");
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..32).collect();
        let doubled = parallel_map(items, 5, |&v| v * 2);
        assert_eq!(doubled, (0..32).map(|v| v * 2).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_threads_priority() {
        // Explicit beats everything.
        assert_eq!(resolve_threads(Some(3)), 3);
        // Zero falls through to env/default, which is at least 1.
        assert!(resolve_threads(Some(0)) >= 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn threads_from_args_parses_both_forms() {
        let argv = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(threads_from_args(argv(&["--threads", "7"])), 7);
        assert_eq!(threads_from_args(argv(&["--threads=5"])), 5);
    }
}
