//! Simulated 64-bit virtual address space for the RedFat reproduction.
//!
//! The paper's low-fat allocator partitions the program's virtual address
//! space into 32 GiB regions (paper Figure 2). Reserving terabytes of real
//! address space is exactly the kind of environment-specific trick this
//! reproduction replaces with a substrate: [`Vm`] provides a sparse,
//! segment-backed 64-bit address space with protection bits, on which the
//! allocator, emulator and runtime operate.
//!
//! The canonical address-space layout -- where code, globals, stack,
//! runtime tables, trampolines and the low-fat regions live -- is defined
//! in [`layout`], shared by every crate that reasons about addresses.

pub mod layout;
pub mod rng;
mod space;

pub use rng::Rng64;
pub use space::{MemSlot, Prot, Vm, VmFault, VmFaultKind, VmSegmentInfo};
