//! A small deterministic PRNG (SplitMix64) shared by the allocator's
//! randomized policies and the test suites.
//!
//! The reproduction must build offline, so it cannot pull in an external
//! `rand` crate; SplitMix64 is tiny, has excellent statistical quality
//! for this purpose, and -- crucially for reproducibility experiments --
//! is fully determined by its seed.

/// SplitMix64 generator state.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift reduction; the modulo bias is at most
    /// `bound / 2^64`, negligible for every bound used here.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi)`. `lo < hi` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Uniform signed value in `[lo, hi)`. `lo < hi` required.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Fair coin.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng64::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = Rng64::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng64::new(42);
        for _ in 0..10_000 {
            let v = r.below(7);
            assert!(v < 7);
            let s = r.range_i64(-5, 5);
            assert!((-5..5).contains(&s));
            let u = r.range_u64(100, 200);
            assert!((100..200).contains(&u));
        }
    }

    #[test]
    fn reasonably_uniform() {
        let mut r = Rng64::new(1);
        let mut buckets = [0u32; 16];
        for _ in 0..16_000 {
            buckets[r.below_usize(16)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b}");
        }
    }
}
