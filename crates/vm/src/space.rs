//! The sparse segment-backed address space.

use std::cell::Cell;

/// Memory protection bits for a mapped segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Prot(pub u8);

impl Prot {
    /// Readable.
    pub const R: Prot = Prot(1);
    /// Writable.
    pub const W: Prot = Prot(2);
    /// Executable.
    pub const X: Prot = Prot(4);
    /// Read + write.
    pub const RW: Prot = Prot(3);
    /// Read + execute.
    pub const RX: Prot = Prot(5);

    /// Returns `true` if all bits of `other` are present.
    pub fn allows(self, other: Prot) -> bool {
        self.0 & other.0 == other.0
    }
}

impl std::ops::BitOr for Prot {
    type Output = Prot;
    fn bitor(self, rhs: Prot) -> Prot {
        Prot(self.0 | rhs.0)
    }
}

/// The kind of access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmFaultKind {
    /// Address not mapped by any segment.
    Unmapped,
    /// Mapped but lacking the required permission.
    Protection,
    /// Access crosses a segment boundary.
    Straddle,
}

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VmFault {
    /// Faulting address.
    pub addr: u64,
    /// Fault kind.
    pub kind: VmFaultKind,
    /// Whether the faulting access was a write.
    pub write: bool,
}

impl std::fmt::Display for VmFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fault at {:#x} ({:?})",
            if self.write { "write" } else { "read" },
            self.addr,
            self.kind
        )
    }
}

impl std::error::Error for VmFault {}

struct Segment {
    base: u64,
    data: Vec<u8>,
    prot: Prot,
    name: String,
}

impl Segment {
    fn end(&self) -> u64 {
        self.base + self.data.len() as u64
    }
}

/// Public view of a mapped segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmSegmentInfo {
    /// Base address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Protections.
    pub prot: Prot,
    /// Debug name.
    pub name: String,
}

/// Entries in the direct-mapped lookup TLB (must be a power of two).
/// Swept at 64/256/512 on the step interpreter, best-of-12 per
/// workload (EXPERIMENTS.md "TLB size sweep"): 256 gains ~3% on gcc --
/// the stand-in whose hot pages are most spread out -- and is noise on
/// the page-compact workloads; 512 buys nothing further. A bigger
/// table is only ~4 KiB of `Cell`s, not extra work per hit, so 256 is
/// kept as the sweep winner.
const TLB_SIZE: usize = 256;
/// Log2 of the TLB page size (4 KiB).
const TLB_SHIFT: u32 = 12;

/// A host-resolution cache slot for [`Vm::read_cached`] /
/// [`Vm::write_cached`]: `(page + 1, segment index, epoch)`, page tag 0
/// = empty. The caller owns one slot per cached access site (the fast
/// execution tier keeps one per memory-touching trace operand); a hit
/// skips both the TLB probe and the protection check, so repeated
/// accesses through the same operand resolve straight to the backing
/// segment.
///
/// Safety of the skipped checks rests on two invariants: per-segment
/// protections are immutable once mapped (there is no `mprotect`), and
/// [`Vm::map`]/[`Vm::grow`] bump the epoch, which invalidates every
/// outstanding slot at once (segment indices shift on `map`, backing
/// storage reallocates on `grow`). A slot must only ever be used for
/// one access kind (reads *or* writes, never both) against one `Vm`:
/// the refill validates the protection for that kind only.
#[derive(Debug, Clone, Default)]
pub struct MemSlot(Cell<(u64, u32, u32)>);

/// A sparse 64-bit address space backed by disjoint segments.
///
/// Segments are kept sorted by base address; lookups go through a small
/// direct-mapped software TLB (page → segment index) followed by binary
/// search on miss, which keeps the emulator's hot loop fast without a
/// page-table walk even when consecutive accesses alternate between
/// segments (stack spills interleaved with heap traffic).
pub struct Vm {
    segments: Vec<Segment>,
    /// `(page + 1, segment index)` per slot; 0 ⇒ empty. Entries are
    /// re-validated against the segment bounds on every hit, so a stale
    /// or colliding entry is a slow lookup, never a wrong one.
    tlb: [Cell<(u64, u32)>; TLB_SIZE],
    /// Mapping epoch: bumped whenever segment indices or backing
    /// storage can move ([`Vm::map`], [`Vm::grow`]). [`MemSlot`]s
    /// record the epoch they were filled in and miss once it moves on.
    epoch: u32,
}

impl Default for Vm {
    fn default() -> Self {
        Self::new()
    }
}

impl Vm {
    /// Creates an empty address space.
    pub fn new() -> Vm {
        Vm {
            segments: Vec::new(),
            tlb: std::array::from_fn(|_| Cell::new((0, 0))),
            epoch: 0,
        }
    }

    /// Drops every TLB entry (segment indices are about to change) and
    /// bumps the epoch so outstanding [`MemSlot`]s miss.
    fn tlb_flush(&mut self) {
        for c in &self.tlb {
            c.set((0, 0));
        }
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// The current mapping epoch (see [`MemSlot`]).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Maps `size` zeroed bytes at `base`.
    ///
    /// # Panics
    ///
    /// Panics if the new segment overlaps an existing one -- mapping is a
    /// host-level setup operation, not a guest-reachable code path.
    pub fn map(&mut self, base: u64, size: u64, prot: Prot, name: &str) {
        assert!(size > 0, "cannot map empty segment {name}");
        assert!(base.checked_add(size).is_some(), "segment wraps: {name}");
        let idx = self.segments.partition_point(|s| s.base < base);
        if let Some(next) = self.segments.get(idx) {
            assert!(
                base + size <= next.base,
                "segment {name} overlaps {}",
                next.name
            );
        }
        if idx > 0 {
            let prev = &self.segments[idx - 1];
            assert!(prev.end() <= base, "segment {name} overlaps {}", prev.name);
        }
        self.segments.insert(
            idx,
            Segment {
                base,
                data: vec![0; size as usize],
                prot,
                name: name.to_owned(),
            },
        );
        self.tlb_flush();
    }

    /// Maps a segment and copies `data` into its start.
    pub fn map_with_data(&mut self, base: u64, mem_size: u64, prot: Prot, name: &str, data: &[u8]) {
        let size = mem_size.max(data.len() as u64);
        self.map(base, size, prot, name);
        let seg = self.find_mut(base).expect("just mapped");
        seg.data[..data.len()].copy_from_slice(data);
    }

    /// Grows the segment based at `base` to `new_size` bytes (zero-fill).
    ///
    /// Used by the allocator to extend subheap regions on demand.
    ///
    /// # Panics
    ///
    /// Panics if no segment is based at `base`, if `new_size` shrinks it,
    /// or if growth would overlap the next segment.
    pub fn grow(&mut self, base: u64, new_size: u64) {
        let idx = self
            .segments
            .binary_search_by_key(&base, |s| s.base)
            .unwrap_or_else(|_| panic!("no segment based at {base:#x}"));
        assert!(new_size >= self.segments[idx].data.len() as u64);
        if let Some(next) = self.segments.get(idx + 1) {
            assert!(base + new_size <= next.base, "grow would overlap");
        }
        self.segments[idx].data.resize(new_size as usize, 0);
        // Segment indices are unchanged, but the resize may have moved
        // the backing storage and extended the valid range: retire
        // outstanding [`MemSlot`]s (they cache resolution state, and
        // the guest allocator calls `grow` mid-run).
        self.epoch = self.epoch.wrapping_add(1);
    }

    /// Lists mapped segments.
    pub fn segments(&self) -> Vec<VmSegmentInfo> {
        self.segments
            .iter()
            .map(|s| VmSegmentInfo {
                base: s.base,
                size: s.data.len() as u64,
                prot: s.prot,
                name: s.name.clone(),
            })
            .collect()
    }

    /// Returns `true` if `addr` is mapped.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Returns `(base, size)` of the segment containing `addr`.
    pub fn segment_span(&self, addr: u64) -> Option<(u64, u64)> {
        self.find(addr).map(|s| (s.base, s.data.len() as u64))
    }

    #[inline]
    fn find(&self, addr: u64) -> Option<&Segment> {
        let page = addr >> TLB_SHIFT;
        let slot = &self.tlb[(page as usize) & (TLB_SIZE - 1)];
        let (tpage, tidx) = slot.get();
        if tpage == page + 1 {
            let s = &self.segments[tidx as usize];
            if addr >= s.base && addr < s.end() {
                return Some(s);
            }
        }
        let idx = self.segments.partition_point(|s| s.base <= addr);
        if idx == 0 {
            return None;
        }
        let s = &self.segments[idx - 1];
        if addr < s.end() {
            slot.set((page + 1, (idx - 1) as u32));
            Some(s)
        } else {
            None
        }
    }

    #[inline]
    fn find_mut(&mut self, addr: u64) -> Option<&mut Segment> {
        let page = addr >> TLB_SHIFT;
        let slot = &self.tlb[(page as usize) & (TLB_SIZE - 1)];
        let (tpage, tidx) = slot.get();
        if tpage == page + 1 {
            let s = &self.segments[tidx as usize];
            if addr >= s.base && addr < s.end() {
                return Some(&mut self.segments[tidx as usize]);
            }
        }
        let idx = self.segments.partition_point(|s| s.base <= addr);
        if idx == 0 {
            return None;
        }
        let s = &self.segments[idx - 1];
        if addr < s.base + s.data.len() as u64 {
            slot.set((page + 1, (idx - 1) as u32));
            Some(&mut self.segments[idx - 1])
        } else {
            None
        }
    }

    /// Reads `N` bytes at `addr` with permission checking.
    ///
    /// Fast path: on a TLB tag match, the page is guaranteed to lie in
    /// the cached segment (segments never shrink or move), so a single
    /// in-bounds slice `get` is the only range check needed; any
    /// failure (protection, straddle, `addr` below a mid-page segment
    /// start) drops to the slow path, which reproduces the exact fault
    /// kind.
    #[inline]
    pub fn read<const N: usize>(&self, addr: u64, prot: Prot) -> Result<[u8; N], VmFault> {
        let page = addr >> TLB_SHIFT;
        let slot = &self.tlb[(page as usize) & (TLB_SIZE - 1)];
        let (tpage, tidx) = slot.get();
        if tpage == page + 1 {
            let s = &self.segments[tidx as usize];
            if s.prot.allows(prot) {
                let off = addr.wrapping_sub(s.base) as usize;
                if let Some(end) = off.checked_add(N) {
                    if let Some(slice) = s.data.get(off..end) {
                        return Ok(slice.try_into().expect("N bytes"));
                    }
                }
            }
        }
        self.read_slow(addr, prot)
    }

    #[cold]
    fn read_slow<const N: usize>(&self, addr: u64, prot: Prot) -> Result<[u8; N], VmFault> {
        let seg = self.find(addr).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Unmapped,
            write: false,
        })?;
        if !seg.prot.allows(prot) {
            return Err(VmFault {
                addr,
                kind: VmFaultKind::Protection,
                write: false,
            });
        }
        let off = (addr - seg.base) as usize;
        let slice = seg.data.get(off..off + N).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Straddle,
            write: false,
        })?;
        Ok(slice.try_into().expect("N bytes"))
    }

    /// Writes bytes at `addr` with permission checking; same fast/slow
    /// split as [`Vm::read`].
    #[inline]
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> Result<(), VmFault> {
        let page = addr >> TLB_SHIFT;
        let slot = &self.tlb[(page as usize) & (TLB_SIZE - 1)];
        let (tpage, tidx) = slot.get();
        if tpage == page + 1 {
            let s = &mut self.segments[tidx as usize];
            if s.prot.allows(Prot::W) {
                let off = addr.wrapping_sub(s.base) as usize;
                if let Some(end) = off.checked_add(bytes.len()) {
                    if let Some(slot) = s.data.get_mut(off..end) {
                        slot.copy_from_slice(bytes);
                        return Ok(());
                    }
                }
            }
        }
        self.write_slow(addr, bytes)
    }

    #[cold]
    fn write_slow(&mut self, addr: u64, bytes: &[u8]) -> Result<(), VmFault> {
        let seg = self.find_mut(addr).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Unmapped,
            write: true,
        })?;
        if !seg.prot.allows(Prot::W) {
            return Err(VmFault {
                addr,
                kind: VmFaultKind::Protection,
                write: true,
            });
        }
        let off = (addr - seg.base) as usize;
        let slot = seg.data.get_mut(off..off + bytes.len()).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Straddle,
            write: true,
        })?;
        slot.copy_from_slice(bytes);
        Ok(())
    }

    /// Segment index containing `addr`, without touching the TLB.
    fn seg_idx(&self, addr: u64) -> Option<usize> {
        let idx = self.segments.partition_point(|s| s.base <= addr);
        if idx == 0 {
            return None;
        }
        (addr < self.segments[idx - 1].end()).then_some(idx - 1)
    }

    /// Reads `N` bytes at `addr` through a caller-owned [`MemSlot`].
    ///
    /// On a slot hit (same page, same epoch) the access goes straight
    /// to the cached segment: no TLB probe, no protection check (the
    /// refill validated `Prot::R`, and protections are immutable). Any
    /// miss -- first use, epoch bump, page change, out-of-segment
    /// offset -- takes the cold path, which reproduces the exact fault
    /// kinds of [`Vm::read`] and refills the slot on success.
    #[inline]
    pub fn read_cached<const N: usize>(
        &self,
        addr: u64,
        slot: &MemSlot,
    ) -> Result<[u8; N], VmFault> {
        let page = addr >> TLB_SHIFT;
        let (tpage, tidx, tepoch) = slot.0.get();
        if tpage == page + 1 && tepoch == self.epoch {
            let s = &self.segments[tidx as usize];
            let off = addr.wrapping_sub(s.base) as usize;
            if let Some(end) = off.checked_add(N) {
                if let Some(slice) = s.data.get(off..end) {
                    return Ok(slice.try_into().expect("N bytes"));
                }
            }
        }
        self.read_cached_slow(addr, slot)
    }

    #[cold]
    fn read_cached_slow<const N: usize>(
        &self,
        addr: u64,
        slot: &MemSlot,
    ) -> Result<[u8; N], VmFault> {
        let bytes: [u8; N] = self.read(addr, Prot::R)?;
        if let Some(idx) = self.seg_idx(addr) {
            slot.0
                .set(((addr >> TLB_SHIFT) + 1, idx as u32, self.epoch));
        }
        Ok(bytes)
    }

    /// Writes bytes at `addr` through a caller-owned [`MemSlot`]; same
    /// hit/refill contract as [`Vm::read_cached`], validating `Prot::W`.
    #[inline]
    pub fn write_cached(&mut self, addr: u64, bytes: &[u8], slot: &MemSlot) -> Result<(), VmFault> {
        let page = addr >> TLB_SHIFT;
        let (tpage, tidx, tepoch) = slot.0.get();
        if tpage == page + 1 && tepoch == self.epoch {
            let s = &mut self.segments[tidx as usize];
            let off = addr.wrapping_sub(s.base) as usize;
            if let Some(end) = off.checked_add(bytes.len()) {
                if let Some(dst) = s.data.get_mut(off..end) {
                    dst.copy_from_slice(bytes);
                    return Ok(());
                }
            }
        }
        self.write_cached_slow(addr, bytes, slot)
    }

    #[cold]
    fn write_cached_slow(
        &mut self,
        addr: u64,
        bytes: &[u8],
        slot: &MemSlot,
    ) -> Result<(), VmFault> {
        self.write(addr, bytes)?;
        if let Some(idx) = self.seg_idx(addr) {
            slot.0
                .set(((addr >> TLB_SHIFT) + 1, idx as u32, self.epoch));
        }
        Ok(())
    }

    /// Reads a `u8`.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, VmFault> {
        Ok(self.read::<1>(addr, Prot::R)?[0])
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> Result<u32, VmFault> {
        Ok(u32::from_le_bytes(self.read::<4>(addr, Prot::R)?))
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> Result<u64, VmFault> {
        Ok(u64::from_le_bytes(self.read::<8>(addr, Prot::R)?))
    }

    /// Writes a `u8`.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), VmFault> {
        self.write(addr, &[v])
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), VmFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), VmFault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Reads `len` bytes for instruction fetch (requires `X`).
    pub fn fetch(&self, addr: u64, len: usize) -> Result<&[u8], VmFault> {
        let seg = self.find(addr).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Unmapped,
            write: false,
        })?;
        if !seg.prot.allows(Prot::X) {
            return Err(VmFault {
                addr,
                kind: VmFaultKind::Protection,
                write: false,
            });
        }
        let off = (addr - seg.base) as usize;
        let end = (off + len).min(seg.data.len());
        Ok(&seg.data[off..end])
    }

    /// Copies out an arbitrary byte range (readable memory).
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<Vec<u8>, VmFault> {
        let seg = self.find(addr).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Unmapped,
            write: false,
        })?;
        if !seg.prot.allows(Prot::R) {
            return Err(VmFault {
                addr,
                kind: VmFaultKind::Protection,
                write: false,
            });
        }
        let off = (addr - seg.base) as usize;
        let slice = seg.data.get(off..off + len).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Straddle,
            write: false,
        })?;
        Ok(slice.to_vec())
    }

    /// Writes bytes ignoring protections (host/runtime privilege, e.g.
    /// loading an image or the allocator updating metadata).
    pub fn write_privileged(&mut self, addr: u64, bytes: &[u8]) -> Result<(), VmFault> {
        let seg = self.find_mut(addr).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Unmapped,
            write: true,
        })?;
        let off = (addr - seg.base) as usize;
        let slot = seg.data.get_mut(off..off + bytes.len()).ok_or(VmFault {
            addr,
            kind: VmFaultKind::Straddle,
            write: true,
        })?;
        slot.copy_from_slice(bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x1000, Prot::RW, "data");
        vm.write_u64(0x1008, 0xDEAD_BEEF).unwrap();
        assert_eq!(vm.read_u64(0x1008).unwrap(), 0xDEAD_BEEF);
        assert_eq!(vm.read_u8(0x1000).unwrap(), 0);
    }

    #[test]
    fn unmapped_faults() {
        let vm = Vm::new();
        let err = vm.read_u64(0x1000).unwrap_err();
        assert_eq!(err.kind, VmFaultKind::Unmapped);
        assert!(!err.write);
    }

    #[test]
    fn protection_enforced() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x1000, Prot::R, "ro");
        assert_eq!(
            vm.write_u8(0x1000, 1).unwrap_err().kind,
            VmFaultKind::Protection
        );
        // Privileged writes bypass protection.
        vm.write_privileged(0x1000, &[7]).unwrap();
        assert_eq!(vm.read_u8(0x1000).unwrap(), 7);
    }

    #[test]
    fn exec_required_for_fetch() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x10, Prot::RX, "code");
        vm.map(0x2000, 0x10, Prot::RW, "data");
        assert!(vm.fetch(0x1000, 4).is_ok());
        assert_eq!(
            vm.fetch(0x2000, 4).unwrap_err().kind,
            VmFaultKind::Protection
        );
    }

    #[test]
    fn straddle_faults() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x10, Prot::RW, "a");
        let err = vm.read_u64(0x100C).unwrap_err();
        assert_eq!(err.kind, VmFaultKind::Straddle);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlap_panics() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x1000, Prot::RW, "a");
        vm.map(0x1800, 0x1000, Prot::RW, "b");
    }

    #[test]
    fn grow_extends() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x10, Prot::RW, "heap");
        assert!(vm.read_u8(0x1010).is_err());
        vm.grow(0x1000, 0x20);
        assert_eq!(vm.read_u8(0x101F).unwrap(), 0);
    }

    #[test]
    fn map_with_data_copies() {
        let mut vm = Vm::new();
        vm.map_with_data(0x4000, 0x100, Prot::RX, "text", &[0xC3, 0x90]);
        assert_eq!(vm.fetch(0x4000, 2).unwrap(), &[0xC3, 0x90]);
    }

    #[test]
    fn cached_reads_and_writes_roundtrip() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x1000, Prot::RW, "data");
        let rs = MemSlot::default();
        let ws = MemSlot::default();
        // First access refills, repeats hit; values always fresh.
        vm.write_cached(0x1008, &7u64.to_le_bytes(), &ws).unwrap();
        assert_eq!(
            u64::from_le_bytes(vm.read_cached::<8>(0x1008, &rs).unwrap()),
            7
        );
        vm.write_cached(0x1008, &9u64.to_le_bytes(), &ws).unwrap();
        assert_eq!(
            u64::from_le_bytes(vm.read_cached::<8>(0x1008, &rs).unwrap()),
            9
        );
    }

    #[test]
    fn cached_access_reproduces_fault_kinds() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x10, Prot::R, "ro");
        let s = MemSlot::default();
        assert_eq!(
            vm.read_cached::<8>(0x5000, &s).unwrap_err().kind,
            VmFaultKind::Unmapped
        );
        assert_eq!(
            vm.read_cached::<8>(0x100C, &s).unwrap_err().kind,
            VmFaultKind::Straddle
        );
        let w = MemSlot::default();
        let err = vm.write_cached(0x1000, &[1], &w).unwrap_err();
        assert_eq!(err.kind, VmFaultKind::Protection);
        assert!(err.write);
    }

    #[test]
    fn map_and_grow_bump_epoch_and_retire_slots() {
        let mut vm = Vm::new();
        vm.map(0x1000, 0x10, Prot::RW, "heap");
        let e0 = vm.epoch();
        let s = MemSlot::default();
        vm.read_cached::<8>(0x1000, &s).unwrap(); // refill at e0
        vm.grow(0x1000, 0x20);
        assert_ne!(vm.epoch(), e0, "grow must retire outstanding slots");
        // The stale slot misses, refills against the grown segment, and
        // the newly valid range is reachable through it.
        assert_eq!(vm.read_cached::<8>(0x1018, &s).unwrap(), [0; 8]);
        let e1 = vm.epoch();
        vm.write_u8(0x1004, 0x5A).unwrap();
        // Mapping *below* the cached segment shifts its index; without
        // the epoch check the slot would silently read the wrong
        // segment (both are readable), so this is the dangerous case.
        vm.map(0x100, 0x10, Prot::RW, "early");
        assert_ne!(vm.epoch(), e1, "map must retire outstanding slots");
        assert_eq!(vm.read_cached::<1>(0x1004, &s).unwrap(), [0x5A]);
    }

    #[test]
    fn lookup_cache_survives_many_segments() {
        let mut vm = Vm::new();
        for i in 0..32u64 {
            vm.map(i * 0x10000, 0x100, Prot::RW, &format!("s{i}"));
        }
        for i in (0..32u64).rev() {
            vm.write_u8(i * 0x10000 + 5, i as u8).unwrap();
        }
        for i in 0..32u64 {
            assert_eq!(vm.read_u8(i * 0x10000 + 5).unwrap(), i as u8);
        }
    }
}
