//! The canonical guest address-space layout and low-fat size classes.
//!
//! ```text
//!   0x0000_0000_0040_0000  CODE_BASE        program text (non-fat region #0)
//!   0x0000_0000_0060_0000  GLOBALS_BASE     program data/bss
//!   0x0000_0000_5000_0000  RUNTIME_BASE     libredfat runtime page:
//!                                           SIZES/MAGICS tables, scratch
//!   0x0000_0000_7000_0000  TRAMPOLINE_BASE  rewriter trampolines
//!                                           (within ±2GiB of CODE_BASE)
//!   0x0000_0001_f800_0000  STACK            grows down from STACK_TOP
//!   0x0000_0008_0000_0000  region #1        low-fat subheap, sizes 1..=16
//!   0x0000_0010_0000_0000  region #2        low-fat subheap, sizes 17..=32
//!   ...                                     one 32 GiB region per class
//! ```
//!
//! Everything below `REGION_SIZE` (32 GiB) is non-fat region #0: code,
//! globals, stack, runtime -- matching the paper's Figure 2 where non-fat
//! regions hold "stack, globals, code, etc.". The stack deliberately sits
//! more than 2 GiB below the first heap region so that the rewriter's
//! check-elimination rule (§6: "a base register not within ±2GB from heap
//! memory") applies to `%rsp`-based operands.

/// Redzone / in-band metadata block size in bytes (paper §4.1).
pub const REDZONE: u64 = 16;

/// log2 of the region size: regions are `2^35` = 32 GiB.
pub const REGION_SIZE_LOG2: u32 = 35;

/// The region size in bytes (32 GiB).
pub const REGION_SIZE: u64 = 1 << REGION_SIZE_LOG2;

/// Number of low-fat size classes (regions #1..=#NUM_CLASSES).
///
/// Classes 1..=64 serve 16-byte-spaced sizes (16, 32, ..., 1024), the
/// default configuration of the LowFat allocator; classes 65..=78 serve
/// power-of-two sizes 2 KiB .. 16 MiB for large allocations.
pub const NUM_CLASSES: usize = 78;

/// Bound used by generated check code: region indices `>= TABLE_ENTRIES`
/// are treated as non-fat without a table lookup.
pub const TABLE_ENTRIES: usize = 128;

/// Base address of program text.
pub const CODE_BASE: u64 = 0x40_0000;

/// Base address of program globals.
pub const GLOBALS_BASE: u64 = 0x60_0000;

/// Base address of the libredfat runtime data page (SIZES/MAGICS tables,
/// register spill scratch). Referenced by generated check code via
/// absolute `disp32` operands, so it must stay below `2^31`.
pub const RUNTIME_BASE: u64 = 0x5000_0000;

/// Address of the SIZES table: `TABLE_ENTRIES` little-endian `u64`s.
pub const SIZES_TABLE: u64 = RUNTIME_BASE;

/// Address of the MAGICS table: `TABLE_ENTRIES` little-endian `u64`s.
pub const MAGICS_TABLE: u64 = RUNTIME_BASE + (TABLE_ENTRIES as u64) * 8;

/// Scratch area used by instrumentation to spill registers when the
/// surrounding code has none free (single-threaded guest).
pub const SCRATCH_BASE: u64 = MAGICS_TABLE + (TABLE_ENTRIES as u64) * 8;

/// Size of the scratch area in bytes.
pub const SCRATCH_SIZE: u64 = 256;

/// Base address of the rewriter's `int3` trap table (a read-only data
/// segment emitted into rewritten binaries).
pub const TRAP_TABLE_BASE: u64 = 0x6F00_0000;

/// Base address for rewriter trampolines. Within rel32 range of
/// `CODE_BASE` so a 5-byte `jmp` can always reach.
pub const TRAMPOLINE_BASE: u64 = 0x7000_0000;

/// Stack top (stack grows down). More than 2 GiB away from both code and
/// heap.
pub const STACK_TOP: u64 = 0x1_F800_0000;

/// Default stack reservation (16 MiB).
pub const STACK_SIZE: u64 = 16 << 20;

/// First address of low-fat heap region `class` (1-based).
pub const fn region_base(class: usize) -> u64 {
    (class as u64) << REGION_SIZE_LOG2
}

/// One past the last byte of the entire low-fat heap.
pub const fn heap_end() -> u64 {
    region_base(NUM_CLASSES + 1)
}

/// First heap address (start of region #1).
pub const fn heap_start() -> u64 {
    region_base(1)
}

/// Returns the region index (0 = non-fat) for an address.
pub const fn region_index(addr: u64) -> usize {
    (addr >> REGION_SIZE_LOG2) as usize
}

/// Returns the allocation size served by `class` (1-based).
///
/// # Panics
///
/// Panics if `class` is 0 or greater than [`NUM_CLASSES`].
pub const fn class_size(class: usize) -> u64 {
    assert!(class >= 1 && class <= NUM_CLASSES);
    if class <= 64 {
        16 * class as u64
    } else {
        2048 << (class - 65)
    }
}

/// Returns the smallest class whose size can hold `size` bytes, or `None`
/// if `size` exceeds the largest class.
pub fn class_for_size(size: u64) -> Option<usize> {
    if size == 0 {
        return Some(1);
    }
    if size <= 1024 {
        return Some(size.div_ceil(16) as usize);
    }
    let mut class = 65;
    let mut cap = 2048u64;
    while class <= NUM_CLASSES {
        if size <= cap {
            return Some(class);
        }
        cap <<= 1;
        class += 1;
    }
    None
}

/// Computes the division magic for `size`: `mulhi(ptr, magic) == ptr /
/// size` for every `ptr < heap_end()`.
///
/// For power-of-two sizes the magic is exact (`2^64 / size`); otherwise
/// `floor(2^64/size) + 1`, whose error term `ptr * e / (size * 2^64)`
/// stays below `1/size` because all non-power-of-two classes have
/// `size <= 1024` and `heap_end() < 2^43`. The allocator's property tests
/// verify this exhaustively at the boundaries.
pub const fn class_magic(class: usize) -> u64 {
    let size = class_size(class) as u128;
    let two64: u128 = 1 << 64;
    if size.is_power_of_two() {
        (two64 / size) as u64
    } else {
        (two64 / size + 1) as u64
    }
}

/// `base(ptr)` reference implementation: the low-fat base address, or 0
/// for non-fat pointers (paper §2.1).
pub fn lowfat_base(ptr: u64) -> u64 {
    let idx = region_index(ptr);
    if idx == 0 || idx > NUM_CLASSES {
        return 0;
    }
    let size = class_size(idx);
    let magic = class_magic(idx);
    let q = ((ptr as u128 * magic as u128) >> 64) as u64;
    q * size
}

/// `size(ptr)` reference implementation: the allocation-class size, or
/// `u64::MAX` for non-fat pointers (the paper's "over-approximate bounds"
/// for non-fat regions).
pub fn lowfat_size(ptr: u64) -> u64 {
    let idx = region_index(ptr);
    if idx == 0 || idx > NUM_CLASSES {
        return u64::MAX;
    }
    class_size(idx)
}

/// Builds the SIZES table as stored at [`SIZES_TABLE`]: entry `i` holds
/// `class_size(i)` for valid classes and 0 otherwise (0 ⇒ non-fat, which
/// generated code turns into `base == 0`).
pub fn sizes_table() -> Vec<u64> {
    let mut t = vec![0u64; TABLE_ENTRIES];
    for (i, slot) in t.iter_mut().enumerate().take(NUM_CLASSES + 1).skip(1) {
        *slot = class_size(i);
    }
    t
}

/// Builds the MAGICS table as stored at [`MAGICS_TABLE`]: entry `i` holds
/// `class_magic(i)` for valid classes and 0 otherwise (0 ⇒ `mulhi` yields
/// 0 ⇒ `base == 0` ⇒ non-fat).
pub fn magics_table() -> Vec<u64> {
    let mut t = vec![0u64; TABLE_ENTRIES];
    for (i, slot) in t.iter_mut().enumerate().take(NUM_CLASSES + 1).skip(1) {
        *slot = class_magic(i);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_sizes_monotone() {
        let mut prev = 0;
        for c in 1..=NUM_CLASSES {
            let s = class_size(c);
            assert!(s > prev, "class {c}");
            prev = s;
        }
        assert_eq!(class_size(1), 16);
        assert_eq!(class_size(64), 1024);
        assert_eq!(class_size(65), 2048);
        assert_eq!(class_size(NUM_CLASSES), 16 << 20);
    }

    #[test]
    fn class_for_size_inverts() {
        for c in 1..=NUM_CLASSES {
            let s = class_size(c);
            assert_eq!(class_for_size(s), Some(c));
            if s > 1 {
                assert_eq!(class_for_size(s - 1), Some(c));
            }
        }
        assert_eq!(class_for_size(class_size(NUM_CLASSES) + 1), None);
        assert_eq!(class_for_size(0), Some(1));
        assert_eq!(class_for_size(17), Some(2));
    }

    #[test]
    fn magic_division_exact_at_boundaries() {
        // The magic must compute floor(ptr / size) exactly for pointers in
        // the class's own region, including the nastiest spots: multiples
        // of size and multiples minus one.
        for c in 1..=NUM_CLASSES {
            let size = class_size(c);
            let magic = class_magic(c);
            let base = region_base(c);
            let end = region_base(c + 1);
            let probe = |ptr: u64| {
                let q = ((ptr as u128 * magic as u128) >> 64) as u64;
                assert_eq!(q, ptr / size, "class {c} ptr {ptr:#x}");
            };
            // First and last aligned objects in the region.
            let first = base.div_ceil(size) * size;
            probe(first);
            probe(first + size - 1);
            probe(first + size);
            let last = (end - 1) / size * size;
            probe(last);
            probe(end - 1);
        }
    }

    #[test]
    fn lowfat_base_size_laws() {
        // Non-fat pointers.
        assert_eq!(lowfat_base(CODE_BASE), 0);
        assert_eq!(lowfat_size(CODE_BASE), u64::MAX);
        assert_eq!(lowfat_base(STACK_TOP - 8), 0);
        assert_eq!(lowfat_base(heap_end() + 123), 0);
        // A fat pointer in region 3 (48-byte class).
        let base = region_base(3).div_ceil(48) * 48;
        for off in [0u64, 1, 13, 47] {
            assert_eq!(lowfat_base(base + off), base);
            assert_eq!(lowfat_size(base + off), 48);
        }
        assert_eq!(lowfat_base(base + 48), base + 48);
    }

    #[test]
    fn stack_far_from_heap_and_code() {
        // Check-elimination precondition: stack more than 2 GiB from heap.
        assert!(heap_start() - STACK_TOP > 2 << 30);
        const { assert!(STACK_TOP - STACK_SIZE > TRAMPOLINE_BASE) };
        // Trampolines reachable from code with rel32.
        assert!(TRAMPOLINE_BASE - CODE_BASE < i32::MAX as u64);
    }

    #[test]
    fn tables_have_expected_shape() {
        let sizes = sizes_table();
        let magics = magics_table();
        assert_eq!(sizes.len(), TABLE_ENTRIES);
        assert_eq!(sizes[0], 0);
        assert_eq!(sizes[1], 16);
        assert_eq!(sizes[NUM_CLASSES], 16 << 20);
        assert_eq!(sizes[NUM_CLASSES + 1], 0);
        assert_eq!(magics[0], 0);
        assert_ne!(magics[1], 0);
        assert_eq!(magics[NUM_CLASSES + 1], 0);
    }

    #[test]
    fn heap_end_fits_pointer_model() {
        // All guest addresses stay below 2^43 so the magic error analysis
        // holds.
        assert!(heap_end() < 1 << 43);
    }
}
