//! Quickstart: compile a vulnerable program, harden it with RedFat, and
//! watch the hardened binary catch an attack the original misses.
//!
//! Run with: `cargo run --release --example quickstart`

use redfat::core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat::emu::{ErrorMode, RunResult};
use redfat::minic::compile;

fn main() {
    // A program with the paper's "snippet (b)": an attacker-controlled,
    // non-incremental array index.
    let source = r#"
        fn main() {
            var tickets = malloc(10 * 8);      // 10 seats
            var prices = malloc(10 * 8);       // adjacent heap object
            for (var i = 0; i < 10; i = i + 1) {
                tickets[i] = 0;
                prices[i] = 100;
            }
            var seat = input();                 // attacker-controlled!
            tickets[seat] = 1;                  // no bounds check
            print(prices[2]);
            return 0;
        }
    "#;
    let image = compile(source).expect("compiles");

    // The original binary: the attack silently corrupts `prices`.
    let benign = run_once(&image, vec![3], ErrorMode::Abort, 1_000_000);
    println!(
        "original, seat=3  -> {:?}, prices[2] = {:?}",
        benign.result, benign.io.out_ints
    );
    let attacked = run_once(&image, vec![14], ErrorMode::Abort, 1_000_000);
    println!(
        "original, seat=14 -> {:?}, prices[2] = {:?}  (corrupted!)",
        attacked.result, attacked.io.out_ints
    );

    // Harden with the full (Redzone)+(LowFat) check (paper Figure 4).
    let config = HardenConfig::with_merge(LowFatPolicy::All);
    let hardened = harden(&image, &config).expect("hardens");
    println!(
        "\nhardened: {} sites full check, {} eliminated, {} trampolines",
        hardened.stats.sites_lowfat, hardened.stats.sites_eliminated, hardened.stats.batches
    );

    // The hardened binary behaves identically on benign input...
    let benign = run_once(&hardened.image, vec![3], ErrorMode::Abort, 1_000_000);
    println!(
        "hardened, seat=3  -> {:?}, prices[2] = {:?}",
        benign.result, benign.io.out_ints
    );

    // ...and aborts cleanly on the attack.
    let attacked = run_once(&hardened.image, vec![14], ErrorMode::Abort, 1_000_000);
    match attacked.result {
        RunResult::MemoryError(e) => {
            println!("hardened, seat=14 -> DETECTED: {e}");
        }
        other => panic!("expected detection, got {other:?}"),
    }
}
