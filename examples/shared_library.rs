//! Separately instrumented shared objects (paper §7.4): "RedFat supports
//! both ELF executables and shared objects, meaning that it is possible
//! to separately instrument both the main program and any dynamic
//! library dependency as required. [...] if the main program is
//! instrumented but a dynamic library dependency is not, then only the
//! former will enjoy memory error protection."
//!
//! This example compiles a main program and a "library" as separate
//! images, links them at load time (the host resolves the library's
//! exported symbol and passes its address to the guest, which calls it
//! with the `callptr` intrinsic), and shows all four hardening
//! combinations.
//!
//! Run with: `cargo run --release --example shared_library`

use redfat::core::{harden, harden_with_bases, HardenConfig, LowFatPolicy};
use redfat::elf::Image;
use redfat::emu::{Emu, ErrorMode, HostRuntime, RunResult};
use redfat::minic::{compile, compile_library};
use redfat::rewriter::RewriteBases;

/// The library: a vulnerable unchecked store, like a parsing helper in a
/// real shared object.
const LIB_SRC: &str = "
fn lib_store(buf, idx) {
    buf[idx] = 0x41;    // no bounds check
    return buf[0];
}";

/// The main program: its own vulnerable store, plus a call into the
/// library through a function pointer the loader provides.
const MAIN_SRC: &str = "
fn main() {
    var lib_fn = input();      // resolved by the 'dynamic linker'
    var idx = input();         // attacker-controlled
    var who = input();         // 0: overflow in main, 1: in the library
    var a = malloc(40);
    var b = malloc(40);
    b[0] = 1;
    if (who == 0) {
        a[idx] = 7;            // main's own store
    } else {
        callptr(lib_fn, a, idx); // library's store
    }
    print(b[0]);
    return 0;
}";

const LIB_CODE_BASE: u64 = 0x0100_0000;
const LIB_GLOBALS_BASE: u64 = 0x0120_0000;
const LIB_TRAMP_BASE: u64 = 0x7800_0000;
const LIB_TRAP_BASE: u64 = 0x77F0_0000;

fn run(main_img: &Image, lib_img: &Image, idx: i64, who: i64) -> RunResult {
    let lib_fn = lib_img
        .symbol("lib_store")
        .expect("library exports lib_store")
        .value;
    let rt = HostRuntime::new(ErrorMode::Abort).with_input(vec![lib_fn as i64, idx, who]);
    let mut emu = Emu::load_images(&[main_img, lib_img], rt).expect("loads");
    emu.run(10_000_000)
}

fn verdict(r: &RunResult) -> &'static str {
    match r {
        RunResult::Exited(_) => "undetected",
        RunResult::MemoryError(_) => "DETECTED",
        other => panic!("unexpected {other:?}"),
    }
}

fn main() {
    let main_plain = compile(MAIN_SRC).expect("main compiles");
    let lib_plain =
        compile_library(LIB_SRC, LIB_CODE_BASE, LIB_GLOBALS_BASE).expect("library compiles");

    let cfg = HardenConfig::with_merge(LowFatPolicy::All);
    let main_hard = harden(&main_plain, &cfg).expect("main hardens").image;
    let lib_hard = harden_with_bases(
        &lib_plain,
        &cfg,
        RewriteBases {
            trampoline: LIB_TRAMP_BASE,
            trap_table: LIB_TRAP_BASE,
        },
    )
    .expect("library hardens")
    .image;

    // The attack index skips the redzone into object b (stride 8 elems).
    let atk = 10;
    println!("attack: buf[{atk}] (skips the redzone into a live neighbor)\n");
    println!(
        "{:<28} {:>16} {:>16}",
        "configuration", "bug in main", "bug in library"
    );
    for (name, m, l) in [
        ("nothing hardened", &main_plain, &lib_plain),
        ("main hardened only", &main_hard, &lib_plain),
        ("library hardened only", &main_plain, &lib_hard),
        ("both hardened", &main_hard, &lib_hard),
    ] {
        let in_main = run(m, l, atk, 0);
        let in_lib = run(m, l, atk, 1);
        println!(
            "{name:<28} {:>16} {:>16}",
            verdict(&in_main),
            verdict(&in_lib)
        );
    }

    // Sanity: benign traffic is clean in the fully hardened setup.
    assert_eq!(run(&main_hard, &lib_hard, 2, 0), RunResult::Exited(0));
    assert_eq!(run(&main_hard, &lib_hard, 2, 1), RunResult::Exited(0));
    println!("\nbenign traffic: clean in every configuration");
    println!("protection follows instrumentation, module by module (paper §7.4)");
}
