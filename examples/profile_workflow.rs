//! The paper's §5 two-phase workflow (Figure 5), end to end:
//!
//! 1. **Profiling phase**: instrument the binary so every memory access
//!    records whether its (LowFat) check passes, run it against a test
//!    suite, and generate an allow-list.
//! 2. **Production phase**: harden with the full (Redzone)+(LowFat)
//!    check on allow-listed sites and (Redzone)-only elsewhere.
//!
//! The demo program contains the classic `array - K` anti-idiom (the
//! paper's snippet (c)): full LowFat checking everywhere would flag it
//! as a false positive; the workflow rescues it while keeping real
//! attacks detectable.
//!
//! Run with: `cargo run --release --example profile_workflow`

use redfat::core::{
    collect_allowlist, harden, instrument_profile, run_once, HardenConfig, LowFatPolicy,
};
use redfat::emu::{ErrorMode, RunResult};
use redfat::minic::compile;

fn main() {
    let source = r#"
        fn main() {
            // A "1-indexed" lookup table: the pointer is intentionally
            // out of bounds (undefined behavior in C, natively produced
            // by Fortran's non-zero array bases).
            var table = malloc(16 * 8);
            var table1 = table - 8;
            for (var i = 0; i < 16; i = i + 1) { table[i] = i * i; }

            // A separate, genuinely vulnerable indexed store.
            var buf = malloc(8 * 8);
            var pad = malloc(8 * 8);
            pad[0] = 1;

            var i = input();       // benign lookups use 1..=16
            var j = input();       // attack vector for buf
            print(table1[i]);
            buf[j] = 7;
            return 0;
        }
    "#;
    let image = compile(source).expect("compiles");

    // Naive full-LowFat hardening false-positives on the benign run.
    let naive = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
    let out = run_once(&naive.image, vec![5, 2], ErrorMode::Abort, 1_000_000);
    println!(
        "naive lowfat-everywhere on benign input: {:?}  <- Problem #2!",
        out.result
    );

    // Phase 1: profile against a training suite.
    let profiling = instrument_profile(&image).expect("profiles");
    let mut profile = std::collections::HashMap::new();
    for train in [vec![1, 0], vec![8, 3], vec![16, 7]] {
        let out = run_once(&profiling.image, train, ErrorMode::Log, 1_000_000);
        assert_eq!(out.result, RunResult::Exited(0));
        for (site, stats) in out.profile {
            let e: &mut redfat::emu::ProfileStats = profile.entry(site).or_default();
            e.passes += stats.passes;
            e.fails += stats.fails;
        }
    }
    let allow = collect_allowlist(&profile);
    println!(
        "\nprofiled {} sites; {} allow-listed (allow.lst below)",
        profile.len(),
        allow.len()
    );
    print!("{}", allow.to_text());

    // Phase 2: production hardening.
    let config = HardenConfig::with_merge(LowFatPolicy::AllowList(allow));
    let production = harden(&image, &config).expect("hardens");

    // Benign inputs: no false positives.
    let ok = run_once(&production.image, vec![5, 2], ErrorMode::Abort, 1_000_000);
    println!(
        "\nproduction, benign input: {:?} output {:?}",
        ok.result, ok.io.out_ints
    );
    assert_eq!(ok.result, RunResult::Exited(0));

    // The attack on `buf` is still caught (non-incremental skip).
    let attack = run_once(&production.image, vec![5, 12], ErrorMode::Abort, 1_000_000);
    match attack.result {
        RunResult::MemoryError(e) => println!("production, attack input: DETECTED: {e}"),
        other => panic!("expected detection, got {other:?}"),
    }
}
