//! Hardening a real-world vulnerability shape: the paper's Figure 1,
//! CVE-2012-4295 (wireshark). A crafted `speed` value writes through
//! `m_vc_index_array[speed - 1]` far past the struct -- skipping every
//! redzone -- into an adjacent heap object.
//!
//! This example shows the comparison of Table 2: the Memcheck-style
//! redzone-only baseline misses the attack, RedFat's complementary
//! check catches it.
//!
//! Run with: `cargo run --release --example harden_cve`

use redfat::core::{harden, run_once, HardenConfig, LowFatPolicy};
use redfat::emu::{Emu, ErrorMode, RunResult};
use redfat::memcheck::MemcheckRuntime;
use redfat::workloads::cve;

fn main() {
    let case = cve::wireshark_2012_4295();
    let image = case.workload.image();
    println!("{} ({})", case.cve, case.workload.name);
    println!(
        "benign speed = {:?}, attack speed = {:?}\n",
        case.benign_input, case.attack_input
    );

    // 1. Original binary: the attack corrupts the adjacent object.
    let out = run_once(
        &image,
        case.attack_input.clone(),
        ErrorMode::Abort,
        1_000_000,
    );
    println!(
        "original under attack:      {:?} (silent corruption)",
        out.result
    );

    // 2. Memcheck-style DBI baseline: misses the redzone skip.
    let rt = MemcheckRuntime::new(ErrorMode::Abort).with_input(case.attack_input.clone());
    let mut emu = Emu::load_image(&image, rt).expect("loads");
    emu.cost = MemcheckRuntime::cost_model();
    let r = emu.run(1_000_000);
    println!(
        "memcheck under attack:      {:?} ({} errors) <- Problem #1",
        r,
        emu.runtime.errors.len()
    );

    // 3. RedFat: complementary (Redzone)+(LowFat) detects it.
    let hardened = harden(&image, &HardenConfig::with_merge(LowFatPolicy::All)).unwrap();
    let out = run_once(
        &hardened.image,
        case.attack_input.clone(),
        ErrorMode::Abort,
        1_000_000,
    );
    match out.result {
        RunResult::MemoryError(e) => println!("redfat under attack:        DETECTED: {e}"),
        other => panic!("expected detection, got {other:?}"),
    }

    // 4. And behaves identically on benign traffic.
    let out = run_once(
        &hardened.image,
        case.benign_input.clone(),
        ErrorMode::Abort,
        1_000_000,
    );
    println!("redfat on benign traffic:   {:?}", out.result);
    assert_eq!(out.result, RunResult::Exited(0));
}
