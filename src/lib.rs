//! RedFat reproduction facade: re-exports of all subsystem crates.
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! paper-to-module mapping.

pub use redfat_analysis as analysis;
pub use redfat_cli as cli;
pub use redfat_core as core;
pub use redfat_elf as elf;
pub use redfat_emu as emu;
pub use redfat_lowfat as lowfat;
pub use redfat_memcheck as memcheck;
pub use redfat_minic as minic;
pub use redfat_rewriter as rewriter;
pub use redfat_vm as vm;
pub use redfat_workloads as workloads;
pub use redfat_x86 as x86;
